//! A graph-saturation model finder for the non-DL fragment.
//!
//! The DL translation ([`crate::orm_to_dl`]) concedes the same expressivity
//! gap the paper does (footnote 10): ring constraints, value constraints and
//! spanning frequency constraints are reported as *unmapped*, so the tableau
//! can never attribute an unsatisfiability that originates in them. This
//! module adds a third engine beside the trail tableau and the clone-based
//! [`crate::classic`] baseline, in the graph-saturation style of Joosten's
//! model finder (arXiv:1806.09392): grow a small **candidate model graph**
//! by applying saturation rules until fixpoint, then certify the candidate
//! against the full ORM population semantics.
//!
//! The engine decides a query in one of two sound ways — and reports
//! *honest ignorance* otherwise:
//!
//! * **Unsat** comes only from the doom analysis: a closed set of
//!   refutation rules (ring-table incompatibility, acyclic-plus-mandatory
//!   traps, value-cardinality starvation, frequency/uniqueness clashes,
//!   exclusion/mandatory clashes, subtype cycles, …) plus a propagation
//!   closure mirroring the paper's §3 propagation. Every refutation carries
//!   [`NonDlOrigin`] provenance — the `AxiomOrigin`-style attribution for
//!   constraints living outside the DL fragment — and a
//!   [`Refutation::beyond_dl`] flag that is `true` exactly when the deciding
//!   constraints are unmapped in the DL translation.
//! * **Sat** comes only from a fully constructed and *verified*
//!   [`ModelGraph`]: the saturation loop seeds the target, discharges
//!   mandatory/frequency/subset/totality obligations with ring-aware
//!   partner policies (self-loops, symmetric mates, three-cycles, sinks),
//!   pads proper subtypes, assigns distinct values from the effective
//!   value-constraint intersections, and finally re-checks the candidate
//!   against a faithful mirror of `orm_population::check`. A candidate that
//!   fails verification is never reported as a verdict.
//! * Everything else — node caps, round caps, exhausted value domains —
//!   surfaces as [`SaturationOutcome::BudgetExhausted`], and an interrupted
//!   run surfaces as `Cancelled`/`DeadlineExceeded`, never as a verdict.
//!
//! Execution control threads the PR 8 [`ExecCx`] end to end: the engine
//! adapts the context onto the `orm_core::ring::ctl` hook, so the reused
//! ring-table searches, the doom analysis, the saturation loop and the
//! verifier all charge the same meter and observe the same budget,
//! deadline and cancellation token. Decided verdicts are cached in
//! [`SaturationShards`] — sharded, stamped with [`Schema::revision`], and
//! never populated by interrupted runs — the same stamp discipline as
//! [`crate::cache::SatShards`].

use crate::exec::{ExecCx, Interrupt, CHECK_INTERVAL};
use crate::tableau::SearchOutcome;
use orm_core::effective_value_cardinality;
use orm_core::ring::ctl::{RingCtl, RingInterrupt};
use orm_core::ring::euler::implied_closure;
use orm_core::ring::table::compatible_ctl;
use orm_model::{
    Constraint, ConstraintId, FactTypeId, ObjectTypeId, RingKind, RingKinds, RoleId, Schema,
    SchemaIndex, SetComparisonKind, Value, ValueConstraint,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Node budget for one candidate model. The saturation rules create at most
/// a handful of structural nodes per fact type (sinks, mates, cycle
/// triples, padding), so hitting this cap means the schema's obligations
/// spiral (e.g. large frequency minima) — the engine then answers
/// `BudgetExhausted` rather than guessing.
const MAX_NODES: usize = 64;

/// Fixpoint-round budget for one candidate model.
const MAX_ROUNDS: usize = 48;

// ---------------------------------------------------------------------------
// ExecCx → RingCtl adapter
// ---------------------------------------------------------------------------

/// Adapts an [`ExecCx`] onto the `orm-core` ring-control hook: steps are
/// batched into the shared meter every [`CHECK_INTERVAL`] units, the
/// cancellation flag is observed on every charge, and the context's
/// per-proof step budget maps to [`RingInterrupt::BudgetExhausted`].
struct CxCtl<'a> {
    cx: &'a ExecCx,
    budget: Option<u64>,
    used: u64,
    pending: u64,
}

impl<'a> CxCtl<'a> {
    fn new(cx: &'a ExecCx) -> Self {
        CxCtl { cx, budget: cx.steps(), used: 0, pending: 0 }
    }

    fn map(i: Interrupt) -> RingInterrupt {
        match i {
            Interrupt::Cancelled => RingInterrupt::Cancelled,
            Interrupt::DeadlineExceeded => RingInterrupt::DeadlineExceeded,
        }
    }
}

impl RingCtl for CxCtl<'_> {
    fn on_step(&mut self, steps: u64) -> Result<(), RingInterrupt> {
        self.used = self.used.saturating_add(steps);
        self.pending = self.pending.saturating_add(steps);
        if let Some(budget) = self.budget {
            if self.used > budget {
                return Err(RingInterrupt::BudgetExhausted);
            }
        }
        if self.pending >= CHECK_INTERVAL {
            let flushed = std::mem::take(&mut self.pending);
            self.cx.check_after(flushed).map_err(Self::map)
        } else {
            self.cx.check().map_err(Self::map)
        }
    }
}

fn interrupted(i: RingInterrupt) -> SaturationOutcome {
    match i {
        RingInterrupt::BudgetExhausted => SaturationOutcome::BudgetExhausted,
        RingInterrupt::Cancelled => SaturationOutcome::Cancelled,
        RingInterrupt::DeadlineExceeded => SaturationOutcome::DeadlineExceeded,
    }
}

// ---------------------------------------------------------------------------
// Provenance for refutations outside the DL fragment
// ---------------------------------------------------------------------------

/// Why the saturation engine refuted a candidate — the `AxiomOrigin`-style
/// provenance for constraints the DL translation cannot express (and for
/// the DL-expressible dooms the analysis also closes over, so one verdict
/// always names its causes).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum NonDlOrigin {
    /// A ring constraint contributes to an incompatible kind combination
    /// (Pattern 8 / Table 1).
    Ring {
        /// The contributing ring constraint.
        constraint: ConstraintId,
    },
    /// An acyclic ring constraint traps a mandatory role whose co-player
    /// cannot escape the player's subtree (Extension 5).
    RingMandatory {
        /// The acyclic ring constraint.
        ring: ConstraintId,
        /// The trapped mandatory constraint.
        mandatory: ConstraintId,
    },
    /// The effective value-constraint intersection of a type is too small
    /// (Extensions 1–2: empty, or a single value under an implied-irreflexive
    /// ring).
    ValueCardinality {
        /// The type holding the binding value constraint.
        ty: ObjectTypeId,
    },
    /// A single-role frequency constraint is unsatisfiable on its own
    /// (inverted bounds).
    Frequency {
        /// The offending frequency constraint.
        constraint: ConstraintId,
    },
    /// A spanning (two-role) frequency constraint can never be met: under
    /// set semantics each whole tuple occurs exactly once, so any spanning
    /// window other than exactly `1..1` starves or overflows. Spanning
    /// frequencies are unmapped in the DL translation.
    SpanningFrequency {
        /// The spanning frequency constraint.
        constraint: ConstraintId,
    },
    /// A frequency minimum exceeds the partner type's effective value
    /// cardinality (Pattern 4).
    FrequencyValue {
        /// The frequency constraint demanding the partners.
        frequency: ConstraintId,
        /// The type whose value constraint starves them.
        ty: ObjectTypeId,
    },
    /// A uniqueness constraint caps a column a frequency minimum wants
    /// repeated (Pattern 7).
    UniquenessFrequency {
        /// The uniqueness constraint.
        uniqueness: ConstraintId,
        /// The conflicting frequency constraint.
        frequency: ConstraintId,
    },
    /// An exclusion argument is forced into a mandatory sibling role
    /// (Pattern 3).
    ExclusionMandatory {
        /// The exclusion constraint.
        exclusion: ConstraintId,
        /// The mandatory constraint on the super-side role.
        mandatory: ConstraintId,
    },
    /// A subset argument is excluded from its own superset (Pattern 6).
    SubsetExclusion {
        /// The subset constraint.
        subset: ConstraintId,
        /// The exclusion constraint over the same roles.
        exclusion: ConstraintId,
    },
    /// A set-comparison constraint spans players that may never share
    /// instances (Extension 4).
    SetIncompatible {
        /// The set-comparison constraint.
        constraint: ConstraintId,
    },
    /// Two supertypes of the element are implicitly mutually exclusive
    /// (Pattern 1).
    TypeExclusion {
        /// First supertype.
        a: ObjectTypeId,
        /// Second supertype.
        b: ObjectTypeId,
    },
    /// An explicit exclusive-types constraint covers two supertypes of the
    /// element (Pattern 2).
    ExclusiveTypes {
        /// The exclusive-types constraint.
        constraint: ConstraintId,
    },
    /// The type lies on a subtype cycle; ORM's proper-subtype semantics
    /// (not expressible in the DL) forces its extent empty (Pattern 9).
    SubtypeCycle {
        /// A type on the cycle.
        ty: ObjectTypeId,
    },
}

impl NonDlOrigin {
    /// The constraints this origin points at (empty for implicit clashes).
    pub fn constraints(&self) -> Vec<ConstraintId> {
        match self {
            NonDlOrigin::Ring { constraint }
            | NonDlOrigin::Frequency { constraint }
            | NonDlOrigin::SpanningFrequency { constraint }
            | NonDlOrigin::SetIncompatible { constraint }
            | NonDlOrigin::ExclusiveTypes { constraint } => vec![*constraint],
            NonDlOrigin::RingMandatory { ring, mandatory } => vec![*ring, *mandatory],
            NonDlOrigin::FrequencyValue { frequency, .. } => vec![*frequency],
            NonDlOrigin::UniquenessFrequency { uniqueness, frequency } => {
                vec![*uniqueness, *frequency]
            }
            NonDlOrigin::ExclusionMandatory { exclusion, mandatory } => {
                vec![*exclusion, *mandatory]
            }
            NonDlOrigin::SubsetExclusion { subset, exclusion } => vec![*subset, *exclusion],
            NonDlOrigin::ValueCardinality { .. }
            | NonDlOrigin::TypeExclusion { .. }
            | NonDlOrigin::SubtypeCycle { .. } => Vec::new(),
        }
    }

    /// Whether this origin involves a construct the DL translation reports
    /// as unmapped (rings, value constraints, spanning frequencies,
    /// proper-subtype cycle semantics).
    pub fn beyond_dl(&self) -> bool {
        matches!(
            self,
            NonDlOrigin::Ring { .. }
                | NonDlOrigin::RingMandatory { .. }
                | NonDlOrigin::ValueCardinality { .. }
                | NonDlOrigin::FrequencyValue { .. }
                | NonDlOrigin::SpanningFrequency { .. }
                | NonDlOrigin::SubtypeCycle { .. }
        )
    }
}

/// A refuted candidate: which constraints killed it, and whether the
/// argument needed constructs outside the DL fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Refutation {
    /// The refuting origins, deduplicated, in deterministic order.
    pub origins: Vec<NonDlOrigin>,
    /// `true` when at least one deciding origin is unmapped in the DL
    /// translation — i.e. the tableau alone could not have produced this
    /// `Unsat`.
    pub beyond_dl: bool,
}

impl Refutation {
    /// All constraints named by the refutation's origins, deduplicated.
    pub fn constraints(&self) -> Vec<ConstraintId> {
        let mut out: Vec<ConstraintId> =
            self.origins.iter().flat_map(|o| o.constraints()).collect();
        out.sort();
        out.dedup();
        out
    }
}

// ---------------------------------------------------------------------------
// The candidate model
// ---------------------------------------------------------------------------

/// A concrete finite model produced by saturation: value extents per object
/// type and value-tuple sets per fact type — deliberately the same shape as
/// `orm_population::Population`, so tests can certify a witness with the
/// real conformance checker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelGraph {
    /// Extent of each populated object type.
    pub extents: BTreeMap<ObjectTypeId, BTreeSet<Value>>,
    /// Tuple set of each populated fact type.
    pub facts: BTreeMap<FactTypeId, BTreeSet<(Value, Value)>>,
}

impl ModelGraph {
    /// The extent of `ty` (empty if unpopulated).
    pub fn extent(&self, ty: ObjectTypeId) -> impl Iterator<Item = &Value> {
        self.extents.get(&ty).into_iter().flatten()
    }

    /// Whether `ty` has at least one instance.
    pub fn type_populated(&self, ty: ObjectTypeId) -> bool {
        self.extents.get(&ty).is_some_and(|e| !e.is_empty())
    }

    /// Whether `role`'s column has at least one entry.
    pub fn role_populated(&self, schema: &Schema, role: RoleId) -> bool {
        let fact = schema.role(role).fact_type();
        self.facts.get(&fact).is_some_and(|t| !t.is_empty())
    }

    /// Total number of instances across all extents.
    pub fn instance_count(&self) -> usize {
        self.extents.values().map(BTreeSet::len).sum()
    }

    /// Total number of tuples across all fact types.
    pub fn tuple_count(&self) -> usize {
        self.facts.values().map(BTreeSet::len).sum()
    }
}

/// Outcome of one saturation query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaturationOutcome {
    /// A verified finite model populating the target.
    Sat(ModelGraph),
    /// The target is provably unpopulatable; the refutation names the
    /// responsible constraints.
    Unsat(Refutation),
    /// The engine ran out of budget (steps, nodes, rounds, or value domain)
    /// before deciding — honest ignorance, never a verdict.
    BudgetExhausted,
    /// The context's cancellation token tripped mid-run.
    Cancelled,
    /// The context's wall-clock deadline passed mid-run.
    DeadlineExceeded,
}

impl SaturationOutcome {
    /// Collapse to the engine-agnostic [`SearchOutcome`] vocabulary.
    pub fn verdict(&self) -> SearchOutcome {
        match self {
            SaturationOutcome::Sat(_) => SearchOutcome::Sat,
            SaturationOutcome::Unsat(_) => SearchOutcome::Unsat,
            SaturationOutcome::BudgetExhausted => SearchOutcome::BudgetExhausted,
            SaturationOutcome::Cancelled => SearchOutcome::Cancelled,
            SaturationOutcome::DeadlineExceeded => SearchOutcome::DeadlineExceeded,
        }
    }

    /// Whether the outcome is a genuine verdict (`Sat` or `Unsat`).
    pub fn is_decided(&self) -> bool {
        matches!(self, SaturationOutcome::Sat(_) | SaturationOutcome::Unsat(_))
    }
}

// ---------------------------------------------------------------------------
// Doom analysis (the Unsat side)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Doom {
    origins: Vec<NonDlOrigin>,
    beyond_dl: bool,
}

impl Doom {
    fn new(origins: Vec<NonDlOrigin>) -> Doom {
        let mut origins = origins;
        origins.sort();
        origins.dedup();
        let beyond_dl = origins.iter().any(NonDlOrigin::beyond_dl);
        Doom { origins, beyond_dl }
    }

    fn refutation(&self) -> Refutation {
        Refutation { origins: self.origins.clone(), beyond_dl: self.beyond_dl }
    }
}

#[derive(Debug, Default)]
struct DoomAnalysis {
    types: BTreeMap<ObjectTypeId, Doom>,
    roles: BTreeMap<RoleId, Doom>,
}

impl DoomAnalysis {
    fn doom_type(&mut self, ty: ObjectTypeId, doom: Doom) {
        self.types.entry(ty).or_insert(doom);
    }

    fn doom_role(&mut self, role: RoleId, doom: Doom) {
        self.roles.entry(role).or_insert(doom);
    }
}

/// Run every seed doom rule, then the propagation closure. Sound: each rule
/// is an argument that the element's population must be empty in every
/// conforming population (set semantics, proper subtypes, implicit type
/// exclusion — the defaults of `orm_population::check`).
fn analyze(
    schema: &Schema,
    idx: &SchemaIndex,
    ctl: &mut dyn RingCtl,
) -> Result<DoomAnalysis, RingInterrupt> {
    let mut doom = DoomAnalysis::default();

    // --- type-level seeds -------------------------------------------------
    for (ty, _) in schema.object_types() {
        ctl.on_step(1)?;
        // Pattern 9: subtype cycles are unsatisfiable under proper-subtype
        // semantics (sub ⊆ sup both ways forces equality; proper forbids it).
        if idx.on_subtype_cycle(ty) {
            doom.doom_type(ty, Doom::new(vec![NonDlOrigin::SubtypeCycle { ty }]));
            continue;
        }
        let closure = idx.supers_refl(ty);
        // Pattern 1: two supertypes without a common ancestor are implicitly
        // exclusive, so nothing can inhabit both.
        let supers: Vec<ObjectTypeId> = closure.iter().copied().collect();
        'clash: for (i, &a) in supers.iter().enumerate() {
            for &b in supers.iter().skip(i + 1) {
                ctl.on_step(1)?;
                if !idx.may_overlap(a, b) {
                    doom.doom_type(ty, Doom::new(vec![NonDlOrigin::TypeExclusion { a, b }]));
                    break 'clash;
                }
            }
        }
        // Pattern 2: an explicit exclusive-types constraint covering two
        // supertypes.
        for (cid, c) in schema.constraints() {
            if let Constraint::ExclusiveTypes(e) = c {
                ctl.on_step(1)?;
                let covered = e.types.iter().filter(|t| closure.contains(t)).count();
                if covered >= 2 {
                    doom.doom_type(
                        ty,
                        Doom::new(vec![NonDlOrigin::ExclusiveTypes { constraint: cid }]),
                    );
                }
            }
        }
        // Extension 1: the effective value-constraint intersection along the
        // supertype chain admits no value at all.
        if let Some((0, holder)) = effective_value_cardinality(schema, idx, ty) {
            doom.doom_type(ty, Doom::new(vec![NonDlOrigin::ValueCardinality { ty: holder }]));
        }
    }

    // --- ring-fact seeds --------------------------------------------------
    for (fact, kinds, cids) in idx.ring_kinds_by_fact(schema) {
        ctl.on_step(1)?;
        let ft = schema.fact_type(fact);
        let (first, second) = (ft.first(), ft.second());
        // Pattern 8: an incompatible kind combination admits only the empty
        // relation.
        if !compatible_ctl(kinds, ctl)? {
            let origins: Vec<NonDlOrigin> =
                cids.iter().map(|&constraint| NonDlOrigin::Ring { constraint }).collect();
            doom.doom_role(first, Doom::new(origins.clone()));
            doom.doom_role(second, Doom::new(origins));
        }
        let closure = implied_closure(kinds);
        // Extension 2: an (implied-)irreflexive ring needs two distinct
        // values, but a common ancestor's effective value cardinality caps
        // both players below that.
        if closure.contains(RingKind::Irreflexive) {
            let (p0, p1) = (schema.player(first), schema.player(second));
            let common: Vec<ObjectTypeId> =
                idx.supers_refl(p0).intersection(&idx.supers_refl(p1)).copied().collect();
            for c in common {
                ctl.on_step(1)?;
                if let Some((card, holder)) = effective_value_cardinality(schema, idx, c) {
                    if card < 2 {
                        let mut origins: Vec<NonDlOrigin> = cids
                            .iter()
                            .map(|&constraint| NonDlOrigin::Ring { constraint })
                            .collect();
                        origins.push(NonDlOrigin::ValueCardinality { ty: holder });
                        doom.doom_role(first, Doom::new(origins.clone()));
                        doom.doom_role(second, Doom::new(origins));
                        break;
                    }
                }
            }
        }
        // Extension 5: an acyclic ring with a mandatory role whose partner
        // type cannot escape the player's subtree — every instance needs a
        // successor inside the relation, so some cycle must close.
        if kinds.contains(RingKind::Acyclic) {
            let acyclic_cid = cids
                .iter()
                .copied()
                .find(|&c| {
                    matches!(schema.constraint(c), Some(Constraint::Ring(r)) if r.kinds.contains(RingKind::Acyclic))
                })
                .unwrap_or(cids[0]);
            for role in [first, second] {
                ctl.on_step(1)?;
                let co = schema.co_role(role);
                if let Some(mandatory) = idx.mandatory_on(role) {
                    if idx.is_subtype_of_or_eq(schema.player(co), schema.player(role)) {
                        let d = Doom::new(vec![NonDlOrigin::RingMandatory {
                            ring: acyclic_cid,
                            mandatory,
                        }]);
                        doom.doom_type(schema.player(role), d.clone());
                        doom.doom_role(first, d.clone());
                        doom.doom_role(second, d);
                    }
                }
            }
        }
    }

    // --- frequency seeds --------------------------------------------------
    for (cid, f) in &idx.frequencies {
        ctl.on_step(1)?;
        let fact = schema.role(f.roles[0]).fact_type();
        let ft = schema.fact_type(fact);
        let inverted = f.max.is_some_and(|max| f.min > max);
        // A spanning minimum above 1 (or inverted bounds) can never be met
        // under set semantics: each tuple is its own group and occurs
        // exactly once. Spanning frequencies are unmapped in the DL
        // translation, so this doom is beyond the tableau's reach.
        if f.roles.len() == 2 && (inverted || f.min > 1) {
            let d = Doom::new(vec![NonDlOrigin::SpanningFrequency { constraint: *cid }]);
            doom.doom_role(ft.first(), d.clone());
            doom.doom_role(ft.second(), d);
            continue;
        }
        // Inverted bounds on a single role are equally hopeless, but the DL
        // translation does express them.
        if inverted {
            let d = Doom::new(vec![NonDlOrigin::Frequency { constraint: *cid }]);
            doom.doom_role(ft.first(), d.clone());
            doom.doom_role(ft.second(), d);
            continue;
        }
        if f.roles.len() == 1 && f.min >= 2 {
            let role = f.roles[0];
            // Pattern 7: a uniqueness constraint on the same single role caps
            // the column at one occurrence per value.
            if let Some(&ucid) = idx.uniqueness_on(&[role]).first() {
                let d = Doom::new(vec![NonDlOrigin::UniquenessFrequency {
                    uniqueness: ucid,
                    frequency: *cid,
                }]);
                doom.doom_role(ft.first(), d.clone());
                doom.doom_role(ft.second(), d);
            }
            // Pattern 4: the partner type cannot supply `min` distinct
            // values.
            let co = schema.co_role(role);
            if let Some((card, holder)) =
                effective_value_cardinality(schema, idx, schema.player(co))
            {
                if card < u64::from(f.min) {
                    let d = Doom::new(vec![NonDlOrigin::FrequencyValue {
                        frequency: *cid,
                        ty: holder,
                    }]);
                    doom.doom_role(ft.first(), d.clone());
                    doom.doom_role(ft.second(), d);
                }
            }
        }
    }

    // --- set-comparison seeds ---------------------------------------------
    for (cid, c) in schema.constraints() {
        let Constraint::SetComparison(sc) = c else { continue };
        ctl.on_step(1)?;
        match sc.kind {
            SetComparisonKind::Exclusion if sc.over_single_roles() => {
                // Pattern 3: an excluded role whose player is forced (by
                // subtyping + a mandatory constraint) into the other column.
                for a in &sc.args {
                    for b in &sc.args {
                        let (ra, rb) = (a.roles()[0], b.roles()[0]);
                        if ra == rb {
                            continue;
                        }
                        if let Some(mandatory) = idx.mandatory_on(rb) {
                            if idx.is_subtype_of_or_eq(schema.player(ra), schema.player(rb)) {
                                doom.doom_role(
                                    ra,
                                    Doom::new(vec![NonDlOrigin::ExclusionMandatory {
                                        exclusion: cid,
                                        mandatory,
                                    }]),
                                );
                            }
                        }
                    }
                }
            }
            SetComparisonKind::Subset | SetComparisonKind::Equality => {
                // Extension 4: arguments whose positionwise players may never
                // overlap force the sub side (both sides for equality) empty.
                let pairs: Vec<(usize, usize)> = match sc.kind {
                    SetComparisonKind::Subset => vec![(0, 1)],
                    _ => (0..sc.args.len())
                        .flat_map(|i| (i + 1..sc.args.len()).map(move |j| (i, j)))
                        .collect(),
                };
                for (i, j) in pairs {
                    let (a, b) = (&sc.args[i], &sc.args[j]);
                    let incompatible =
                        a.roles().iter().zip(b.roles()).any(|(ra, rb)| {
                            !idx.may_overlap(schema.player(*ra), schema.player(*rb))
                        });
                    if incompatible {
                        let d = Doom::new(vec![NonDlOrigin::SetIncompatible { constraint: cid }]);
                        for r in a.roles() {
                            doom.doom_role(*r, d.clone());
                        }
                        if sc.kind == SetComparisonKind::Equality {
                            for r in b.roles() {
                                doom.doom_role(*r, d.clone());
                            }
                        }
                    }
                }
                // Pattern 6: a subset argument excluded from its own
                // superset.
                if sc.kind == SetComparisonKind::Subset && sc.over_single_roles() {
                    let (sub, sup) = (sc.args[0].roles()[0], sc.args[1].roles()[0]);
                    for (ecid, ec) in schema.constraints() {
                        if let Constraint::SetComparison(e) = ec {
                            if e.kind == SetComparisonKind::Exclusion
                                && e.over_single_roles()
                                && e.args.iter().any(|s| s.roles()[0] == sub)
                                && e.args.iter().any(|s| s.roles()[0] == sup)
                            {
                                doom.doom_role(
                                    sub,
                                    Doom::new(vec![NonDlOrigin::SubsetExclusion {
                                        subset: cid,
                                        exclusion: ecid,
                                    }]),
                                );
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    propagate(schema, idx, &mut doom, ctl)?;
    Ok(doom)
}

/// The §3-style propagation closure: dead types kill their subtypes and
/// roles, dead roles kill co-roles and subset feeders, all-dead mandatory
/// alternatives kill the player, all-dead subtypes of a totality kill the
/// supertype.
fn propagate(
    schema: &Schema,
    idx: &SchemaIndex,
    doom: &mut DoomAnalysis,
    ctl: &mut dyn RingCtl,
) -> Result<(), RingInterrupt> {
    loop {
        ctl.on_step(1)?;
        let before = (doom.types.len(), doom.roles.len());

        let dead_types: Vec<(ObjectTypeId, Doom)> =
            doom.types.iter().map(|(t, d)| (*t, d.clone())).collect();
        for (t, d) in dead_types {
            // Subtypes inherit emptiness (their extents are subsets).
            for sub in idx.subs(t).clone() {
                doom.doom_type(sub, d.clone());
            }
            // Roles played by a dead type stay empty; so do their co-roles.
            for &r in &idx.roles_of_type[t.index()] {
                doom.doom_role(r, d.clone());
            }
        }

        let dead_roles: Vec<(RoleId, Doom)> =
            doom.roles.iter().map(|(r, d)| (*r, d.clone())).collect();
        for (r, d) in &dead_roles {
            // Tuples populate both columns at once.
            doom.doom_role(schema.co_role(*r), d.clone());
        }

        for (_, c) in schema.constraints() {
            ctl.on_step(1)?;
            match c {
                // A mandatory disjunction with every alternative dead kills
                // the player.
                Constraint::Mandatory(m)
                    if m.roles.iter().all(|r| doom.roles.contains_key(r)) =>
                {
                    let mut origins = Vec::new();
                    for r in &m.roles {
                        origins.extend(doom.roles[r].origins.clone());
                    }
                    doom.doom_type(schema.player(m.roles[0]), Doom::new(origins));
                }
                // A totality whose subtypes are all dead kills the supertype.
                Constraint::TotalSubtypes(t)
                    if !t.subtypes.is_empty()
                        && t.subtypes.iter().all(|s| doom.types.contains_key(s)) =>
                {
                    let mut origins = Vec::new();
                    for s in &t.subtypes {
                        origins.extend(doom.types[s].origins.clone());
                    }
                    doom.doom_type(t.supertype, Doom::new(origins));
                }
                // A subset/equality path into a dead role keeps the feeder
                // empty too.
                Constraint::SetComparison(sc) => match sc.kind {
                    SetComparisonKind::Subset => {
                        let (sub, sup) = (&sc.args[0], &sc.args[1]);
                        if sup.roles().iter().any(|r| doom.roles.contains_key(r)) {
                            let mut origins = Vec::new();
                            for r in sup.roles() {
                                if let Some(d) = doom.roles.get(r) {
                                    origins.extend(d.origins.clone());
                                }
                            }
                            let d = Doom::new(origins);
                            for r in sub.roles() {
                                doom.doom_role(*r, d.clone());
                            }
                        }
                    }
                    SetComparisonKind::Equality => {
                        if let Some(dead) = sc
                            .args
                            .iter()
                            .find(|a| a.roles().iter().any(|r| doom.roles.contains_key(r)))
                        {
                            let mut origins = Vec::new();
                            for r in dead.roles() {
                                if let Some(d) = doom.roles.get(r) {
                                    origins.extend(d.origins.clone());
                                }
                            }
                            let d = Doom::new(origins);
                            for a in &sc.args {
                                for r in a.roles() {
                                    doom.doom_role(*r, d.clone());
                                }
                            }
                        }
                    }
                    SetComparisonKind::Exclusion => {}
                },
                _ => {}
            }
        }

        if (doom.types.len(), doom.roles.len()) == before {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------------
// Candidate construction (the Sat side)
// ---------------------------------------------------------------------------

/// What a saturation query asks to populate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SaturationTarget {
    /// Populate an object type.
    Type(ObjectTypeId),
    /// Populate a role (hence its whole fact type).
    Role(RoleId),
}

/// The in-progress candidate: anonymous nodes with type-label sets, and
/// node-pair edges per fact type. Values are assigned only once the graph
/// reaches fixpoint, so label growth never invalidates earlier choices.
struct Candidate<'a> {
    schema: &'a Schema,
    idx: &'a SchemaIndex,
    labels: Vec<BTreeSet<ObjectTypeId>>,
    edges: BTreeMap<FactTypeId, BTreeSet<(usize, usize)>>,
    sinks: HashMap<(FactTypeId, u8), usize>,
    mates: HashMap<FactTypeId, usize>,
    cycles: HashMap<FactTypeId, [usize; 3]>,
    padded: BTreeSet<(ObjectTypeId, ObjectTypeId)>,
    ring_decl: HashMap<FactTypeId, RingKinds>,
    ring_clo: HashMap<FactTypeId, RingKinds>,
    stuck: bool,
}

impl<'a> Candidate<'a> {
    fn new(schema: &'a Schema, idx: &'a SchemaIndex) -> Candidate<'a> {
        let mut ring_decl = HashMap::new();
        let mut ring_clo = HashMap::new();
        for (fact, kinds, _) in idx.ring_kinds_by_fact(schema) {
            ring_decl.insert(fact, kinds);
            ring_clo.insert(fact, implied_closure(kinds));
        }
        Candidate {
            schema,
            idx,
            labels: Vec::new(),
            edges: BTreeMap::new(),
            sinks: HashMap::new(),
            mates: HashMap::new(),
            cycles: HashMap::new(),
            padded: BTreeSet::new(),
            ring_decl,
            ring_clo,
            stuck: false,
        }
    }

    fn add_node(&mut self, seed: impl IntoIterator<Item = ObjectTypeId>) -> usize {
        let mut labels = BTreeSet::new();
        for t in seed {
            labels.extend(self.idx.supers_refl(t));
        }
        self.labels.push(labels);
        if self.labels.len() > MAX_NODES {
            self.stuck = true;
        }
        self.labels.len() - 1
    }

    fn extend_labels(&mut self, n: usize, ty: ObjectTypeId) {
        let closure = self.idx.supers_refl(ty);
        self.labels[n].extend(closure);
    }

    fn edge(&mut self, fact: FactTypeId, a: usize, b: usize) {
        self.edges.entry(fact).or_default().insert((a, b));
    }

    fn plays(&self, n: usize, role: RoleId) -> bool {
        let r = self.schema.role(role);
        let Some(tuples) = self.edges.get(&r.fact_type()) else { return false };
        tuples.iter().any(|&(a, b)| if r.position() == 0 { a == n } else { b == n })
    }

    fn fingerprint(&self) -> (usize, usize, usize, usize) {
        (
            self.labels.len(),
            self.labels.iter().map(BTreeSet::len).sum(),
            self.edges.values().map(BTreeSet::len).sum(),
            self.padded.len(),
        )
    }

    /// The shared structural partner at one position of a fact type,
    /// created on first use. Only for facts whose partner column carries no
    /// per-value cap (no single-role uniqueness or frequency maximum).
    fn sink(&mut self, fact: FactTypeId, position: u8) -> usize {
        if let Some(&n) = self.sinks.get(&(fact, position)) {
            return n;
        }
        let player = self.schema.player(self.schema.fact_type(fact).role_at(position));
        let n = self.add_node([player]);
        self.sinks.insert((fact, position), n);
        n
    }

    /// Whether the column of `role` may receive repeated entries without a
    /// verifier complaint (drives sink sharing vs fresh partners).
    fn column_capped(&self, role: RoleId) -> bool {
        !self.idx.uniqueness_on(&[role]).is_empty()
            || self.idx.frequencies.iter().any(|(_, f)| f.roles.len() == 1 && f.roles[0] == role)
    }

    /// The symmetric mate of a ring fact, distinct from `not` (so a node is
    /// never its own partner).
    fn mate(&mut self, fact: FactTypeId, not: usize) -> usize {
        if let Some(&m) = self.mates.get(&fact) {
            if m != not {
                return m;
            }
        }
        let ft = self.schema.fact_type(fact);
        let (p0, p1) = (self.schema.player(ft.first()), self.schema.player(ft.second()));
        let m = self.add_node([p0, p1]);
        self.mates.insert(fact, m);
        m
    }

    /// The three-node directed cycle of a ring fact (for trapped mandatory
    /// roles on non-acyclic rings), created on first use.
    fn cycle(&mut self, fact: FactTypeId) -> [usize; 3] {
        if let Some(&c) = self.cycles.get(&fact) {
            return c;
        }
        let ft = self.schema.fact_type(fact);
        let (p0, p1) = (self.schema.player(ft.first()), self.schema.player(ft.second()));
        let c = [self.add_node([p0, p1]), self.add_node([p0, p1]), self.add_node([p0, p1])];
        self.edge(fact, c[0], c[1]);
        self.edge(fact, c[1], c[2]);
        self.edge(fact, c[2], c[0]);
        self.cycles.insert(fact, c);
        c
    }

    /// Make node `n` play `role`, choosing a ring-aware partner policy.
    fn ensure_plays(
        &mut self,
        n: usize,
        role: RoleId,
        ctl: &mut dyn RingCtl,
    ) -> Result<(), RingInterrupt> {
        ctl.on_step(1)?;
        if self.stuck || self.plays(n, role) {
            return Ok(());
        }
        let r = self.schema.role(role);
        let fact = r.fact_type();
        let pos = r.position();
        let player = self.schema.player(role);
        let co = self.schema.co_role(role);
        let co_player = self.schema.player(co);
        let clo = self.ring_clo.get(&fact).copied().unwrap_or(RingKinds::EMPTY);
        let trapped = self.idx.is_subtype_of_or_eq(co_player, player);

        let oriented = |this: &mut Self, a: usize| {
            if pos == 0 {
                this.edge(fact, n, a);
            } else {
                this.edge(fact, a, n);
            }
        };

        if clo.is_empty() {
            if trapped {
                // No ring semantics forbid a self-loop, and a partner of the
                // same subtree would just re-raise the obligation.
                self.extend_labels(n, co_player);
                self.edge(fact, n, n);
            } else if self.column_capped(co) {
                let partner = self.add_node([co_player]);
                oriented(self, partner);
            } else {
                let partner = self.sink(fact, self.schema.role(co).position());
                oriented(self, partner);
            }
            return Ok(());
        }

        // Ring fact: the closure decides which shapes stay legal.
        let self_loop_ok = !clo.contains(RingKind::Irreflexive)
            && !clo.contains(RingKind::Asymmetric)
            && !clo.contains(RingKind::Acyclic)
            && !clo.contains(RingKind::Intransitive);
        if self_loop_ok {
            // kinds ⊆ {antisymmetric, symmetric}: a loop satisfies both.
            self.extend_labels(n, player);
            self.extend_labels(n, co_player);
            self.edge(fact, n, n);
        } else if clo.contains(RingKind::Symmetric) {
            // Mutual pair with a dedicated mate; legal for the remaining
            // compatible symmetric combinations (sym+ir, sym+it, …).
            let m = self.mate(fact, n);
            self.extend_labels(n, player);
            self.extend_labels(n, co_player);
            self.edge(fact, n, m);
            self.edge(fact, m, n);
        } else if !trapped {
            // A one-directional edge to a partner outside the player's
            // subtree satisfies every non-symmetric kind.
            if self.column_capped(co) {
                let partner = self.add_node([co_player]);
                oriented(self, partner);
            } else {
                let partner = self.sink(fact, self.schema.role(co).position());
                oriented(self, partner);
            }
        } else {
            // Trapped (partner drawn from the player's own subtree) and no
            // self-loop or mutual pair available. A fresh partner works as
            // long as nothing forces that partner to play in turn.
            let forced =
                self.idx.mandatory_on(role).is_some() || self.idx.mandatory_on(co).is_some();
            if !forced {
                let partner = self.add_node([co_player]);
                oriented(self, partner);
            } else if clo.contains(RingKind::Acyclic) {
                // Trapped acyclic mandatory: Extension 5 territory — the
                // doom analysis normally catches this; a disjunctive variant
                // that slips through is honestly undecidable here.
                self.stuck = true;
            } else {
                // Forced, non-symmetric, non-acyclic: attach to a shared
                // three-cycle (legal for ir/ans/as/it).
                let c = self.cycle(fact);
                self.extend_labels(n, player);
                self.extend_labels(n, co_player);
                if c.contains(&n) {
                    return Ok(());
                }
                if pos == 0 {
                    self.edge(fact, n, c[0]);
                } else {
                    self.edge(fact, c[2], n);
                }
            }
        }
        Ok(())
    }

    fn apply_totality(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        for (_, c) in self.schema.constraints() {
            let Constraint::TotalSubtypes(t) = c else { continue };
            ctl.on_step(1)?;
            if t.subtypes.is_empty() {
                continue;
            }
            for n in 0..self.labels.len() {
                if self.labels[n].contains(&t.supertype)
                    && !t.subtypes.iter().any(|s| self.labels[n].contains(s))
                {
                    self.extend_labels(n, t.subtypes[0]);
                }
            }
        }
        Ok(())
    }

    fn apply_mandatory(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        for (_, c) in self.schema.constraints() {
            let Constraint::Mandatory(m) = c else { continue };
            ctl.on_step(1)?;
            let player = self.schema.player(m.roles[0]);
            for n in 0..self.labels.len() {
                if !self.labels[n].contains(&player) {
                    continue;
                }
                if m.roles.iter().any(|r| self.plays(n, *r)) {
                    continue;
                }
                self.ensure_plays(n, m.roles[0], ctl)?;
                if self.stuck {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    fn apply_symmetry(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        let facts: Vec<FactTypeId> = self
            .ring_decl
            .iter()
            .filter(|(_, k)| k.contains(RingKind::Symmetric))
            .map(|(f, _)| *f)
            .collect();
        for fact in facts {
            ctl.on_step(1)?;
            let Some(tuples) = self.edges.get(&fact) else { continue };
            let missing: Vec<(usize, usize)> =
                tuples.iter().filter(|(a, b)| !tuples.contains(&(*b, *a))).copied().collect();
            let ft = self.schema.fact_type(fact);
            let (p0, p1) = (self.schema.player(ft.first()), self.schema.player(ft.second()));
            for (a, b) in missing {
                self.extend_labels(b, p0);
                self.extend_labels(a, p1);
                self.edge(fact, b, a);
            }
        }
        Ok(())
    }

    fn apply_frequency(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        let frequencies = self.idx.frequencies.clone();
        for (_, f) in &frequencies {
            if f.roles.len() != 1 || f.min <= 1 {
                continue;
            }
            ctl.on_step(1)?;
            let role = f.roles[0];
            let r = self.schema.role(role);
            let (fact, pos) = (r.fact_type(), r.position());
            let co_player = self.schema.player(self.schema.co_role(role));
            let participants: Vec<usize> =
                (0..self.labels.len()).filter(|&n| self.plays(n, role)).collect();
            for n in participants {
                loop {
                    ctl.on_step(1)?;
                    let count = self
                        .edges
                        .get(&fact)
                        .map(|t| {
                            t.iter()
                                .filter(|&&(a, b)| if pos == 0 { a == n } else { b == n })
                                .count()
                        })
                        .unwrap_or(0);
                    if count >= f.min as usize {
                        break;
                    }
                    if self.labels.len() >= MAX_NODES {
                        self.stuck = true;
                        return Ok(());
                    }
                    let partner = self.add_node([co_player]);
                    if pos == 0 {
                        self.edge(fact, n, partner);
                    } else {
                        self.edge(fact, partner, n);
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_set_comparisons(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        let constraints: Vec<orm_model::SetComparison> = self
            .schema
            .constraints()
            .filter_map(|(_, c)| match c {
                Constraint::SetComparison(sc) if sc.kind != SetComparisonKind::Exclusion => {
                    Some(sc.clone())
                }
                _ => None,
            })
            .collect();
        for sc in &constraints {
            ctl.on_step(1)?;
            let pairs: Vec<(usize, usize)> = match sc.kind {
                SetComparisonKind::Subset => vec![(0, 1)],
                SetComparisonKind::Equality => (0..sc.args.len())
                    .flat_map(|i| (0..sc.args.len()).filter(move |&j| j != i).map(move |j| (i, j)))
                    .collect(),
                SetComparisonKind::Exclusion => Vec::new(),
            };
            for (si, ti) in pairs {
                let (sub, sup) = (&sc.args[si], &sc.args[ti]);
                if sub.is_single() {
                    let (ra, rb) = (sub.roles()[0], sup.roles()[0]);
                    let pb = self.schema.player(rb);
                    for n in 0..self.labels.len() {
                        if self.plays(n, ra) && !self.plays(n, rb) {
                            self.extend_labels(n, pb);
                            self.ensure_plays(n, rb, ctl)?;
                            if self.stuck {
                                return Ok(());
                            }
                        }
                    }
                } else {
                    // Whole-predicate inclusion: copy each oriented tuple.
                    let read = |this: &Self, seq: &orm_model::RoleSeq| -> Vec<(usize, usize)> {
                        let first = this.schema.role(seq.roles()[0]);
                        let tuples = this.edges.get(&first.fact_type());
                        tuples
                            .into_iter()
                            .flatten()
                            .map(|&(a, b)| if first.position() == 0 { (a, b) } else { (b, a) })
                            .collect()
                    };
                    let have: BTreeSet<(usize, usize)> = read(self, sup).into_iter().collect();
                    let want: Vec<(usize, usize)> =
                        read(self, sub).into_iter().filter(|t| !have.contains(t)).collect();
                    let first = self.schema.role(sup.roles()[0]);
                    let (fact, pos) = (first.fact_type(), first.position());
                    let (q0, q1) =
                        (self.schema.player(sup.roles()[0]), self.schema.player(sup.roles()[1]));
                    for (x, y) in want {
                        ctl.on_step(1)?;
                        self.extend_labels(x, q0);
                        self.extend_labels(y, q1);
                        if pos == 0 {
                            self.edge(fact, x, y);
                        } else {
                            self.edge(fact, y, x);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_padding(&mut self, ctl: &mut dyn RingCtl) -> Result<(), RingInterrupt> {
        let links: Vec<(ObjectTypeId, ObjectTypeId)> =
            self.schema.subtype_links().map(|l| (l.sub, l.sup)).collect();
        for (sub, sup) in links {
            ctl.on_step(1)?;
            if self.padded.contains(&(sub, sup)) {
                continue;
            }
            let sub_nodes: BTreeSet<usize> =
                (0..self.labels.len()).filter(|&n| self.labels[n].contains(&sub)).collect();
            let sup_nodes: BTreeSet<usize> =
                (0..self.labels.len()).filter(|&n| self.labels[n].contains(&sup)).collect();
            if !sub_nodes.is_empty() && sub_nodes == sup_nodes {
                // Proper-subtype semantics needs a supertype-only witness.
                self.add_node([sup]);
                self.padded.insert((sub, sup));
            }
        }
        Ok(())
    }

    /// Assign one distinct value per node: drawn from the effective
    /// value-constraint intersection of its labels when one exists, synthetic
    /// otherwise. Returns `None` when a value domain is exhausted.
    fn assign_values(&self) -> Option<ModelGraph> {
        let mut used: BTreeSet<Value> = BTreeSet::new();
        let mut values: Vec<Value> = Vec::with_capacity(self.labels.len());
        for (i, labels) in self.labels.iter().enumerate() {
            let mut merged: Option<ValueConstraint> = None;
            for t in labels {
                if let Some(vc) = self.schema.object_type(*t).value_constraint() {
                    merged = Some(match merged {
                        None => vc.clone(),
                        Some(acc) => acc.intersect(vc),
                    });
                }
            }
            let value = match merged {
                Some(vc) => vc.iter_values().find(|v| !used.contains(v))?,
                None => Value::str(format!("~e{i}")),
            };
            used.insert(value.clone());
            values.push(value);
        }
        let mut graph = ModelGraph::default();
        for (n, labels) in self.labels.iter().enumerate() {
            for t in labels {
                graph.extents.entry(*t).or_default().insert(values[n].clone());
            }
        }
        for (fact, tuples) in &self.edges {
            let entry = graph.facts.entry(*fact).or_default();
            for &(a, b) in tuples {
                entry.insert((values[a].clone(), values[b].clone()));
            }
        }
        Some(graph)
    }

    /// Run the saturation loop to fixpoint and hand back the valued graph.
    fn saturate(&mut self, ctl: &mut dyn RingCtl) -> Result<Option<ModelGraph>, RingInterrupt> {
        for _round in 0..MAX_ROUNDS {
            ctl.on_step(1)?;
            let before = self.fingerprint();
            self.apply_totality(ctl)?;
            self.apply_mandatory(ctl)?;
            self.apply_symmetry(ctl)?;
            self.apply_frequency(ctl)?;
            self.apply_set_comparisons(ctl)?;
            self.apply_padding(ctl)?;
            if self.stuck {
                return Ok(None);
            }
            if self.fingerprint() == before {
                return Ok(self.assign_values());
            }
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// Verification — an independent mirror of the population conformance rules
// ---------------------------------------------------------------------------

fn column<'g>(
    graph: &'g ModelGraph,
    schema: &Schema,
    role: RoleId,
) -> impl Iterator<Item = &'g Value> + 'g {
    let r = schema.role(role);
    let pos = r.position();
    graph
        .facts
        .get(&r.fact_type())
        .into_iter()
        .flatten()
        .map(move |(a, b)| if pos == 0 { a } else { b })
}

fn oriented<'g>(
    graph: &'g ModelGraph,
    schema: &Schema,
    seq: &orm_model::RoleSeq,
) -> BTreeSet<(&'g Value, &'g Value)> {
    let first = schema.role(seq.roles()[0]);
    graph
        .facts
        .get(&first.fact_type())
        .into_iter()
        .flatten()
        .map(|(a, b)| if first.position() == 0 { (a, b) } else { (b, a) })
        .collect()
}

fn tuples_satisfy_ring(tuples: &BTreeSet<(Value, Value)>, kind: RingKind) -> bool {
    let holds = |x: &Value, y: &Value| tuples.contains(&(x.clone(), y.clone()));
    let nodes: BTreeSet<&Value> = tuples.iter().flat_map(|(a, b)| [a, b]).collect();
    match kind {
        RingKind::Irreflexive => tuples.iter().all(|(a, b)| a != b),
        RingKind::Antisymmetric => tuples.iter().all(|(a, b)| a == b || !holds(b, a)),
        RingKind::Asymmetric => tuples.iter().all(|(a, b)| !holds(b, a)),
        RingKind::Symmetric => tuples.iter().all(|(a, b)| holds(b, a)),
        RingKind::Intransitive => {
            tuples.iter().all(|(a, b)| nodes.iter().all(|c| !(holds(b, c) && holds(a, c))))
        }
        RingKind::Acyclic => {
            // Iterative DFS with an explicit on-stack set.
            let mut done: BTreeSet<&Value> = BTreeSet::new();
            for start in &nodes {
                if done.contains(*start) {
                    continue;
                }
                let mut stack: Vec<(&Value, Vec<&Value>)> = vec![(
                    start,
                    tuples.iter().filter(|(a, _)| a == *start).map(|(_, b)| b).collect(),
                )];
                let mut on_path: BTreeSet<&Value> = BTreeSet::new();
                on_path.insert(start);
                while let Some((node, succs)) = stack.last_mut() {
                    match succs.pop() {
                        Some(next) => {
                            if on_path.contains(next) {
                                return false;
                            }
                            if done.contains(next) {
                                continue;
                            }
                            on_path.insert(next);
                            let next_succs =
                                tuples.iter().filter(|(a, _)| a == next).map(|(_, b)| b).collect();
                            stack.push((next, next_succs));
                        }
                        None => {
                            on_path.remove(*node);
                            done.insert(node);
                            stack.pop();
                        }
                    }
                }
            }
            true
        }
    }
}

/// Check a candidate graph against the full population conformance rules
/// (set semantics, proper subtypes, implicit type exclusion — the defaults
/// of the population checker). Returns `Ok(false)` on any violation; the
/// engine treats that as "no verdict", never as `Unsat`.
fn verify(
    graph: &ModelGraph,
    schema: &Schema,
    idx: &SchemaIndex,
    ctl: &mut dyn RingCtl,
) -> Result<bool, RingInterrupt> {
    // Fact conformity: tuple entries instance their role players.
    for (fact, tuples) in &graph.facts {
        ctl.on_step(1)?;
        let ft = schema.fact_type(*fact);
        let (p0, p1) = (schema.player(ft.first()), schema.player(ft.second()));
        for (a, b) in tuples {
            if !graph.extents.get(&p0).is_some_and(|e| e.contains(a))
                || !graph.extents.get(&p1).is_some_and(|e| e.contains(b))
            {
                return Ok(false);
            }
        }
    }
    // Own value constraints.
    for (ty, extent) in &graph.extents {
        ctl.on_step(1)?;
        if let Some(vc) = schema.object_type(*ty).value_constraint() {
            if extent.iter().any(|v| !vc.admits(v)) {
                return Ok(false);
            }
        }
    }
    // Subtyping (proper) and implicit type exclusion.
    let extent_of = |t: ObjectTypeId| graph.extents.get(&t).cloned().unwrap_or_default();
    for link in schema.subtype_links() {
        ctl.on_step(1)?;
        let (sub, sup) = (extent_of(link.sub), extent_of(link.sup));
        if !sub.is_subset(&sup) {
            return Ok(false);
        }
        if !sub.is_empty() && sub == sup {
            return Ok(false);
        }
    }
    let types: Vec<ObjectTypeId> = graph.extents.keys().copied().collect();
    for (i, a) in types.iter().enumerate() {
        for b in &types[i + 1..] {
            ctl.on_step(1)?;
            if !idx.may_overlap(*a, *b) && extent_of(*a).intersection(&extent_of(*b)).count() > 0 {
                return Ok(false);
            }
        }
    }
    // Explicit constraints.
    for (_, c) in schema.constraints() {
        ctl.on_step(1)?;
        match c {
            Constraint::Mandatory(m) => {
                let player = schema.player(m.roles[0]);
                for v in graph.extent(player) {
                    let covered = m.roles.iter().any(|r| column(graph, schema, *r).any(|x| x == v));
                    if !covered {
                        return Ok(false);
                    }
                }
            }
            Constraint::Uniqueness(u) => {
                if u.roles.len() == 1 {
                    let values: Vec<&Value> = column(graph, schema, u.roles[0]).collect();
                    let distinct: BTreeSet<&Value> = values.iter().copied().collect();
                    if values.len() != distinct.len() {
                        return Ok(false);
                    }
                }
                // A spanning uniqueness is tuple-level identity — free under
                // set semantics.
            }
            Constraint::Frequency(f) => {
                if f.roles.len() == 1 {
                    let values: Vec<&Value> = column(graph, schema, f.roles[0]).collect();
                    let distinct: BTreeSet<&Value> = values.iter().copied().collect();
                    for v in distinct {
                        let count = values.iter().filter(|x| **x == v).count() as u32;
                        if count < f.min || f.max.is_some_and(|m| count > m) {
                            return Ok(false);
                        }
                    }
                } else {
                    // Spanning frequency: each tuple is its own group of 1.
                    let fact = schema.role(f.roles[0]).fact_type();
                    let populated = graph.facts.get(&fact).is_some_and(|t| !t.is_empty());
                    if populated && (f.min > 1 || f.max == Some(0)) {
                        return Ok(false);
                    }
                }
            }
            Constraint::SetComparison(sc) => {
                let sets: Vec<BTreeSet<(&Value, &Value)>> = if sc.over_single_roles() {
                    sc.args
                        .iter()
                        .map(|seq| column(graph, schema, seq.roles()[0]).map(|v| (v, v)).collect())
                        .collect()
                } else {
                    sc.args.iter().map(|seq| oriented(graph, schema, seq)).collect()
                };
                match sc.kind {
                    SetComparisonKind::Subset => {
                        if !sets[0].is_subset(&sets[1]) {
                            return Ok(false);
                        }
                    }
                    SetComparisonKind::Equality => {
                        if sets.windows(2).any(|w| w[0] != w[1]) {
                            return Ok(false);
                        }
                    }
                    SetComparisonKind::Exclusion => {
                        for (i, a) in sets.iter().enumerate() {
                            for b in &sets[i + 1..] {
                                if a.intersection(b).count() > 0 {
                                    return Ok(false);
                                }
                            }
                        }
                    }
                }
            }
            Constraint::ExclusiveTypes(e) => {
                for (i, a) in e.types.iter().enumerate() {
                    for b in &e.types[i + 1..] {
                        if extent_of(*a).intersection(&extent_of(*b)).count() > 0 {
                            return Ok(false);
                        }
                    }
                }
            }
            Constraint::TotalSubtypes(t) => {
                let mut union: BTreeSet<Value> = BTreeSet::new();
                for s in &t.subtypes {
                    union.extend(extent_of(*s));
                }
                if !extent_of(t.supertype).is_subset(&union) {
                    return Ok(false);
                }
            }
            Constraint::Ring(r) => {
                let Some(tuples) = graph.facts.get(&r.fact_type) else { continue };
                for kind in r.kinds.iter() {
                    ctl.on_step(1)?;
                    if !tuples_satisfy_ring(tuples, kind) {
                        return Ok(false);
                    }
                }
            }
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Verdict cache — sharded, stamped on the schema revision
// ---------------------------------------------------------------------------

const SHARD_COUNT: usize = 8;

#[derive(Clone)]
enum Decided {
    Sat(ModelGraph),
    Unsat(Refutation),
}

/// Cache counters, mirroring the tableau cache's vocabulary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SaturationCacheStats {
    /// Queries answered from a shard.
    pub hits: u64,
    /// Queries that had to run the engine.
    pub misses: u64,
    /// Whole-cache clears forced by a schema-revision change.
    pub invalidations: u64,
}

/// Sharded verdict cache for saturation queries, keyed on
/// [`SaturationTarget`] and stamped with the schema revision: a query
/// against a different revision clears every shard before probing, so a
/// stale verdict can never leak across schema edits. Only genuine verdicts
/// are stored — interrupted or unknown runs record nothing.
pub struct SaturationShards {
    shards: [Mutex<HashMap<SaturationTarget, Decided>>; SHARD_COUNT],
    stamp: Mutex<Option<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for SaturationShards {
    fn default() -> Self {
        SaturationShards {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            stamp: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl SaturationShards {
    /// An empty cache.
    pub fn new() -> SaturationShards {
        SaturationShards::default()
    }

    fn shard(&self, target: SaturationTarget) -> &Mutex<HashMap<SaturationTarget, Decided>> {
        let slot = match target {
            SaturationTarget::Type(t) => t.index(),
            SaturationTarget::Role(r) => r.index().wrapping_add(0x9e37),
        };
        &self.shards[slot % SHARD_COUNT]
    }

    /// Align the cache with a schema revision, clearing all shards when the
    /// stamp moved.
    fn validate(&self, revision: u64) {
        let mut stamp = self.stamp.lock();
        if *stamp == Some(revision) {
            return;
        }
        if stamp.is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        for shard in &self.shards {
            shard.lock().clear();
        }
        *stamp = Some(revision);
    }

    fn probe(&self, target: SaturationTarget) -> Option<Decided> {
        let found = self.shard(target).lock().get(&target).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn record(&self, target: SaturationTarget, decided: Decided) {
        self.shard(target).lock().insert(target, decided);
    }

    /// Current counters.
    pub fn stats(&self) -> SaturationCacheStats {
        SaturationCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The graph-saturation model finder.
///
/// Construction is cheap; the doom analysis runs lazily on the first query
/// and is shared by every later one (including parallel sweeps — the engine
/// is `Sync`). See the module docs for the soundness contract.
pub struct SaturationEngine<'s> {
    schema: &'s Schema,
    idx: SchemaIndex,
    doom: OnceLock<DoomAnalysis>,
    cache: Arc<SaturationShards>,
}

impl<'s> SaturationEngine<'s> {
    /// An engine with a private cache.
    pub fn new(schema: &'s Schema) -> SaturationEngine<'s> {
        SaturationEngine::with_cache(schema, Arc::new(SaturationShards::new()))
    }

    /// An engine sharing `cache` with other engines (the shards re-validate
    /// against this schema's revision on first use).
    pub fn with_cache(schema: &'s Schema, cache: Arc<SaturationShards>) -> SaturationEngine<'s> {
        SaturationEngine { schema, idx: schema.index(), doom: OnceLock::new(), cache }
    }

    /// The schema index the engine operates on.
    pub fn index(&self) -> &SchemaIndex {
        &self.idx
    }

    /// Cache counters of the underlying shards.
    pub fn cache_stats(&self) -> SaturationCacheStats {
        self.cache.stats()
    }

    /// Decide whether `target` can be populated, under `cx` control.
    pub fn check(&self, target: SaturationTarget, cx: &ExecCx) -> SaturationOutcome {
        // An expired or cancelled context returns its interrupt before the
        // cache is even probed: interrupted runs never produce a verdict.
        if let Err(i) = cx.check() {
            return match i {
                Interrupt::Cancelled => SaturationOutcome::Cancelled,
                Interrupt::DeadlineExceeded => SaturationOutcome::DeadlineExceeded,
            };
        }
        self.cache.validate(self.schema.revision());
        if let Some(decided) = self.cache.probe(target) {
            return match decided {
                Decided::Sat(graph) => SaturationOutcome::Sat(graph),
                Decided::Unsat(refutation) => SaturationOutcome::Unsat(refutation),
            };
        }
        let mut ctl = CxCtl::new(cx);
        let doom = if let Some(d) = self.doom.get() {
            d
        } else {
            match analyze(self.schema, &self.idx, &mut ctl) {
                Ok(d) => self.doom.get_or_init(|| d),
                Err(i) => return interrupted(i),
            }
        };
        let doomed = match target {
            SaturationTarget::Type(t) => doom.types.get(&t),
            SaturationTarget::Role(r) => doom.roles.get(&r),
        };
        if let Some(d) = doomed {
            let refutation = d.refutation();
            self.cache.record(target, Decided::Unsat(refutation.clone()));
            cx.note_proof();
            return SaturationOutcome::Unsat(refutation);
        }
        let mut candidate = Candidate::new(self.schema, &self.idx);
        match target {
            SaturationTarget::Type(t) => {
                candidate.add_node([t]);
            }
            SaturationTarget::Role(r) => {
                let n = candidate.add_node([self.schema.player(r)]);
                if let Err(i) = candidate.ensure_plays(n, r, &mut ctl) {
                    return interrupted(i);
                }
            }
        }
        match candidate.saturate(&mut ctl) {
            Err(i) => interrupted(i),
            Ok(None) => SaturationOutcome::BudgetExhausted,
            Ok(Some(graph)) => match verify(&graph, self.schema, &self.idx, &mut ctl) {
                Err(i) => interrupted(i),
                // A candidate that fails its own verification is no verdict
                // at all: Sat needs a certified witness, Unsat a refutation.
                Ok(false) => SaturationOutcome::BudgetExhausted,
                Ok(true) => {
                    self.cache.record(target, Decided::Sat(graph.clone()));
                    cx.note_proof();
                    SaturationOutcome::Sat(graph)
                }
            },
        }
    }

    /// [`check`](Self::check) for an object type.
    pub fn check_type(&self, ty: ObjectTypeId, cx: &ExecCx) -> SaturationOutcome {
        self.check(SaturationTarget::Type(ty), cx)
    }

    /// [`check`](Self::check) for a role.
    pub fn check_role(&self, role: RoleId, cx: &ExecCx) -> SaturationOutcome {
        self.check(SaturationTarget::Role(role), cx)
    }

    /// Sequentially decide every object type.
    pub fn type_sweep(&self, cx: &ExecCx) -> Vec<(ObjectTypeId, SaturationOutcome)> {
        self.schema.object_types().map(|(id, _)| (id, self.check_type(id, cx))).collect()
    }

    /// Sequentially decide every role.
    pub fn role_sweep(&self, cx: &ExecCx) -> Vec<(RoleId, SaturationOutcome)> {
        self.schema.roles().map(|(id, _)| (id, self.check_role(id, cx))).collect()
    }

    /// Decide every object type on a work-stealing fan-out under `cx`.
    pub fn type_sweep_par(
        &self,
        threads: usize,
        cx: &ExecCx,
    ) -> crate::par::Batch<SaturationOutcome> {
        let ids: Vec<ObjectTypeId> = self.schema.object_types().map(|(id, _)| id).collect();
        crate::par::fan_out_cx(&ids, threads, cx, |_, id| self.check_type(*id, cx))
    }

    /// Decide every role on a work-stealing fan-out under `cx`.
    pub fn role_sweep_par(
        &self,
        threads: usize,
        cx: &ExecCx,
    ) -> crate::par::Batch<SaturationOutcome> {
        let ids: Vec<RoleId> = self.schema.roles().map(|(id, _)| id).collect();
        crate::par::fan_out_cx(&ids, threads, cx, |_, id| self.check_role(*id, cx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RingKind, SchemaBuilder};
    use std::time::Duration;

    fn ring_schema(kinds: &[RingKind]) -> Schema {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("Woman").unwrap();
        let f = b
            .fact_type_full("sister_of", (w, Some("r1")), (w, Some("r2")), Some("is sister of"))
            .unwrap();
        b.ring(f, kinds.iter().copied()).unwrap();
        b.finish()
    }

    fn first_role(schema: &Schema) -> RoleId {
        schema.roles().next().unwrap().0
    }

    #[test]
    fn pre_cancelled_context_interrupts_before_any_verdict() {
        let s = ring_schema(&[RingKind::Irreflexive]);
        let engine = SaturationEngine::new(&s);
        let cx = ExecCx::unlimited();
        cx.cancel();
        let out = engine.check_role(first_role(&s), &cx);
        assert!(matches!(out, SaturationOutcome::Cancelled), "{out:?}");
        // Nothing was probed, nothing recorded.
        assert_eq!(engine.cache_stats().hits + engine.cache_stats().misses, 0);
    }

    #[test]
    fn pre_expired_deadline_interrupts_before_any_verdict() {
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let engine = SaturationEngine::new(&s);
        let cx = ExecCx::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let out = engine.check_role(first_role(&s), &cx);
        assert!(matches!(out, SaturationOutcome::DeadlineExceeded), "{out:?}");
    }

    #[test]
    fn tiny_step_budget_exhausts_instead_of_deciding() {
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let engine = SaturationEngine::new(&s);
        let out = engine.check_role(first_role(&s), &ExecCx::with_steps(1));
        assert!(matches!(out, SaturationOutcome::BudgetExhausted), "{out:?}");
    }

    #[test]
    fn incompatible_ring_is_unsat_beyond_dl() {
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let engine = SaturationEngine::new(&s);
        let out = engine.check_role(first_role(&s), &ExecCx::unlimited());
        let SaturationOutcome::Unsat(refutation) = out else {
            panic!("expected Unsat, got {out:?}");
        };
        assert!(refutation.beyond_dl);
        assert!(refutation.origins.iter().any(|o| matches!(o, NonDlOrigin::Ring { .. })));
        assert!(!refutation.constraints().is_empty());
        // The type itself survives — only the roles are doomed.
        let ty = s.object_types().next().unwrap().0;
        assert!(matches!(engine.check_type(ty, &ExecCx::unlimited()), SaturationOutcome::Sat(_)));
    }

    #[test]
    fn single_ring_kinds_are_sat_with_verified_witness() {
        for kind in RingKind::ALL {
            let s = ring_schema(&[kind]);
            let engine = SaturationEngine::new(&s);
            let out = engine.check_role(first_role(&s), &ExecCx::unlimited());
            let SaturationOutcome::Sat(graph) = out else {
                panic!("{kind}: expected Sat, got {out:?}");
            };
            assert!(graph.role_populated(&s, first_role(&s)), "{kind}: witness unpopulated");
            assert!(
                verify(&graph, &s, &engine.idx, &mut CxCtl::new(&ExecCx::unlimited())).unwrap(),
                "{kind}: witness fails verification"
            );
        }
    }

    #[test]
    fn acyclic_mandatory_trap_is_unsat_with_ring_mandatory_origin() {
        // Extension 5: acyclic ring + mandatory role over the same subtree.
        let mut b = SchemaBuilder::new("s");
        let e = b.entity_type("Employee").unwrap();
        let f = b
            .fact_type_full("reports_to", (e, Some("r1")), (e, Some("r2")), Some("reports to"))
            .unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.mandatory(r1).unwrap();
        let s = b.finish();
        let engine = SaturationEngine::new(&s);
        let out = engine.check_type(e, &ExecCx::unlimited());
        let SaturationOutcome::Unsat(refutation) = out else {
            panic!("expected Unsat, got {out:?}");
        };
        assert!(refutation.beyond_dl);
        assert!(refutation.origins.iter().any(|o| matches!(o, NonDlOrigin::RingMandatory { .. })));
    }

    #[test]
    fn plain_schema_is_sat_and_verdicts_are_cached() {
        let s = ring_schema(&[RingKind::Asymmetric]);
        let engine = SaturationEngine::new(&s);
        let role = first_role(&s);
        let cx = ExecCx::unlimited();
        let first = engine.check_role(role, &cx);
        assert!(first.is_decided());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        let second = engine.check_role(role, &cx);
        assert_eq!(first.verdict(), second.verdict());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn shared_cache_invalidates_on_revision_change() {
        let s1 = ring_schema(&[RingKind::Irreflexive]);
        let cache = Arc::new(SaturationShards::new());
        {
            let engine = SaturationEngine::with_cache(&s1, Arc::clone(&cache));
            engine.check_role(first_role(&s1), &ExecCx::unlimited());
        }
        // A different schema revision must clear the shards.
        let mut b = SchemaBuilder::new("other");
        let w = b.entity_type("W").unwrap();
        b.fact_type("f", w, w).unwrap();
        let s2 = b.finish();
        if s2.revision() != s1.revision() {
            let engine = SaturationEngine::with_cache(&s2, Arc::clone(&cache));
            engine.check_role(first_role(&s2), &ExecCx::unlimited());
            assert!(cache.stats().invalidations >= 1);
        }
    }

    #[test]
    fn sweeps_sequential_and_parallel_agree() {
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let engine = SaturationEngine::new(&s);
        let cx = ExecCx::unlimited();
        let seq = engine.role_sweep(&cx);
        let par = engine.role_sweep_par(2, &cx);
        assert!(par.is_complete());
        for ((_, a), b) in seq.iter().zip(par.results.iter()) {
            assert_eq!(a.verdict(), b.as_ref().unwrap().verdict());
        }
    }
}
