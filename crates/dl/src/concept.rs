//! The concept language: `ALCNI` (ALC + unqualified number restrictions +
//! inverse roles), in negation normal form.

use std::fmt;

/// Index of an atomic concept name in its [`crate::tbox::TBox`].
pub type AtomId = u32;

/// Index of a role name in its [`crate::tbox::TBox`].
pub type RoleNameId = u32;

/// A role or its inverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleExpr {
    /// The underlying role name.
    pub name: RoleNameId,
    /// Whether the role is inverted.
    pub inverse: bool,
}

impl RoleExpr {
    /// The role itself.
    pub fn direct(name: RoleNameId) -> RoleExpr {
        RoleExpr { name, inverse: false }
    }

    /// The inverse of the role.
    pub fn inv_of(name: RoleNameId) -> RoleExpr {
        RoleExpr { name, inverse: true }
    }

    /// Flip the direction.
    pub fn inverse(self) -> RoleExpr {
        RoleExpr { name: self.name, inverse: !self.inverse }
    }
}

impl fmt::Display for RoleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inverse {
            write!(f, "R{}⁻", self.name)
        } else {
            write!(f, "R{}", self.name)
        }
    }
}

/// A concept expression.
///
/// Number restrictions are unqualified (`≥n R`, `≤n R`); the existential and
/// universal quantifiers are the qualified ALC forms. This is the fragment
/// the binary ORM mapping produces.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concept {
    /// ⊤
    Top,
    /// ⊥
    Bottom,
    /// Atomic concept.
    Atomic(AtomId),
    /// Negated atomic concept (NNF keeps negation at the leaves).
    NotAtomic(AtomId),
    /// Conjunction.
    And(Vec<Concept>),
    /// Disjunction.
    Or(Vec<Concept>),
    /// `∃R.C`
    Exists(RoleExpr, Box<Concept>),
    /// `∀R.C`
    ForAll(RoleExpr, Box<Concept>),
    /// `≥n R` (unqualified)
    AtLeast(u32, RoleExpr),
    /// `≤n R` (unqualified)
    AtMost(u32, RoleExpr),
}

impl Concept {
    /// Negation, pushed into negation normal form.
    ///
    /// An associated function by design (`Concept::not(c)` reads like the
    /// DL constructor `¬C`), not the `Not` operator trait.
    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Concept) -> Concept {
        match c {
            Concept::Top => Concept::Bottom,
            Concept::Bottom => Concept::Top,
            Concept::Atomic(a) => Concept::NotAtomic(a),
            Concept::NotAtomic(a) => Concept::Atomic(a),
            Concept::And(cs) => Concept::Or(cs.into_iter().map(Concept::not).collect()),
            Concept::Or(cs) => Concept::And(cs.into_iter().map(Concept::not).collect()),
            Concept::Exists(r, c) => Concept::ForAll(r, Box::new(Concept::not(*c))),
            Concept::ForAll(r, c) => Concept::Exists(r, Box::new(Concept::not(*c))),
            // ¬(≥n R) = ≤(n-1) R; ¬(≥0 R) = ⊥ is impossible since ≥0 = ⊤.
            Concept::AtLeast(n, r) => {
                if n == 0 {
                    Concept::Bottom
                } else {
                    Concept::AtMost(n - 1, r)
                }
            }
            // ¬(≤n R) = ≥(n+1) R.
            Concept::AtMost(n, r) => Concept::AtLeast(n + 1, r),
        }
    }

    /// N-ary conjunction with flattening and unit simplification.
    pub fn and(cs: impl IntoIterator<Item = Concept>) -> Concept {
        let mut out = Vec::new();
        for c in cs {
            match c {
                Concept::Top => {}
                Concept::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Concept::Top,
            1 => out.pop().expect("len checked"),
            _ => Concept::And(out),
        }
    }

    /// N-ary disjunction with flattening and unit simplification.
    pub fn or(cs: impl IntoIterator<Item = Concept>) -> Concept {
        let mut out = Vec::new();
        for c in cs {
            match c {
                Concept::Bottom => {}
                Concept::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Concept::Bottom,
            1 => out.pop().expect("len checked"),
            _ => Concept::Or(out),
        }
    }

    /// `∃R.⊤` — "plays role R", the workhorse of the ORM mapping.
    pub fn some(role: RoleExpr) -> Concept {
        Concept::Exists(role, Box::new(Concept::Top))
    }

    /// The implication `C ⊑ D` as the internalized disjunct `¬C ⊔ D`.
    pub fn implies(c: Concept, d: Concept) -> Concept {
        Concept::or([Concept::not(c), d])
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Concept::Top => write!(f, "⊤"),
            Concept::Bottom => write!(f, "⊥"),
            Concept::Atomic(a) => write!(f, "A{a}"),
            Concept::NotAtomic(a) => write!(f, "¬A{a}"),
            Concept::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊓ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Concept::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊔ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Concept::Exists(r, c) => write!(f, "∃{r}.{c}"),
            Concept::ForAll(r, c) => write!(f, "∀{r}.{c}"),
            Concept::AtLeast(n, r) => write!(f, "≥{n} {r}"),
            Concept::AtMost(n, r) => write!(f, "≤{n} {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let samples = [
            Concept::Top,
            Concept::Bottom,
            Concept::Atomic(0),
            Concept::some(RoleExpr::direct(0)),
            Concept::AtMost(2, RoleExpr::inv_of(1)),
            Concept::and([Concept::Atomic(0), Concept::NotAtomic(1)]),
        ];
        for c in samples {
            assert_eq!(Concept::not(Concept::not(c.clone())), c);
        }
    }

    #[test]
    fn number_restriction_duality() {
        let r = RoleExpr::direct(0);
        assert_eq!(Concept::not(Concept::AtLeast(3, r)), Concept::AtMost(2, r));
        assert_eq!(Concept::not(Concept::AtMost(2, r)), Concept::AtLeast(3, r));
        assert_eq!(Concept::not(Concept::AtLeast(0, r)), Concept::Bottom);
    }

    #[test]
    fn and_or_simplify() {
        assert_eq!(Concept::and([]), Concept::Top);
        assert_eq!(Concept::and([Concept::Atomic(1)]), Concept::Atomic(1));
        assert_eq!(Concept::and([Concept::Top, Concept::Atomic(1)]), Concept::Atomic(1));
        assert_eq!(Concept::or([]), Concept::Bottom);
        assert_eq!(Concept::or([Concept::Bottom, Concept::Atomic(1)]), Concept::Atomic(1));
        // Nested flattening.
        assert_eq!(
            Concept::and([
                Concept::and([Concept::Atomic(0), Concept::Atomic(1)]),
                Concept::Atomic(2)
            ]),
            Concept::And(vec![Concept::Atomic(0), Concept::Atomic(1), Concept::Atomic(2)])
        );
    }

    #[test]
    fn role_expr_inverse() {
        let r = RoleExpr::direct(4);
        assert_eq!(r.inverse(), RoleExpr::inv_of(4));
        assert_eq!(r.inverse().inverse(), r);
    }

    #[test]
    fn display_is_readable() {
        let c = Concept::Exists(RoleExpr::direct(1), Box::new(Concept::Atomic(2)));
        assert_eq!(c.to_string(), "∃R1.A2");
        assert_eq!(Concept::AtMost(1, RoleExpr::inv_of(0)).to_string(), "≤1 R0⁻");
    }
}
