//! Hash-consed concept storage for the tableau engine.
//!
//! The engine never manipulates [`Concept`] trees directly: every concept
//! reachable in a satisfiability check is *interned* once into an
//! [`Arena`], and node labels become sorted `Vec<ConceptId>` — set
//! membership is a binary search over `u32`s, label equality (the hot
//! comparison of pairwise blocking) is a `memcmp`, and structural equality
//! of concepts is id equality. Interning canonicalizes `⊓`/`⊔` argument
//! lists (sorted, deduplicated) so syntactically distinct but equal-as-set
//! conjunctions collapse to one id.
//!
//! Each id also carries a precomputed SplitMix64 *mixing hash*
//! ([`Arena::mix`]): XOR-ing the mixes of a label's members yields an
//! order-independent label fingerprint that is updated incrementally on
//! insert and — because XOR is its own inverse — on trail rollback. The
//! tableau's blocking test compares fingerprints before falling back to
//! the exact comparison.
//!
//! Atoms additionally get an eagerly interned complement
//! ([`Arena::atom_complement`]) so the `A ⊓ ¬A` clash test on label
//! insertion is a single set lookup, with no re-interning on the hot path.

use crate::concept::{Concept, RoleExpr};
use std::collections::HashMap;
use std::fmt;

/// Id of an interned concept in an [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConceptId(pub u32);

/// Id of a role expression: `2·name` for a direct role, `2·name + 1` for
/// its inverse. The closure tables in [`crate::tbox::RoleClosure`] are
/// indexed by this encoding.
pub type RoleExprId = u32;

/// Encode a [`RoleExpr`] as a [`RoleExprId`].
pub fn role_expr_id(r: RoleExpr) -> RoleExprId {
    r.name * 2 + u32::from(r.inverse)
}

/// Decode a [`RoleExprId`] back into a [`RoleExpr`].
pub fn role_expr_of(id: RoleExprId) -> RoleExpr {
    RoleExpr { name: id / 2, inverse: id % 2 == 1 }
}

/// Flip the direction of an encoded role expression.
pub fn invert_role_expr(id: RoleExprId) -> RoleExprId {
    id ^ 1
}

/// The structure of an interned concept, children by id.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CKind {
    /// ⊤
    Top,
    /// ⊥
    Bottom,
    /// Atomic concept.
    Atomic(u32),
    /// Negated atomic concept.
    NotAtomic(u32),
    /// Conjunction over sorted, deduplicated children.
    And(Box<[ConceptId]>),
    /// Disjunction over sorted, deduplicated children.
    Or(Box<[ConceptId]>),
    /// `∃R.C`
    Exists(RoleExprId, ConceptId),
    /// `∀R.C`
    ForAll(RoleExprId, ConceptId),
    /// `≥n R`
    AtLeast(u32, RoleExprId),
    /// `≤n R`
    AtMost(u32, RoleExprId),
}

/// Hash-consing arena: each structurally distinct concept is stored once.
#[derive(Clone, Debug, Default)]
pub struct Arena {
    kinds: Vec<CKind>,
    ids: HashMap<CKind, ConceptId>,
    mixes: Vec<u64>,
    /// `complement[i]` is the id of `¬kinds[i]` for atoms/⊤/⊥, `None`
    /// elsewhere (complex complements are never needed at runtime).
    complements: Vec<Option<ConceptId>>,
}

pub(crate) fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Number of interned concepts.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The structure of `id`.
    pub fn kind(&self, id: ConceptId) -> &CKind {
        &self.kinds[id.0 as usize]
    }

    /// The order-independent mixing hash of `id` (XOR these per label).
    pub fn mix(&self, id: ConceptId) -> u64 {
        self.mixes[id.0 as usize]
    }

    /// The complement id of an atom, `⊤` or `⊥` (eagerly interned); `None`
    /// for complex concepts.
    pub fn atom_complement(&self, id: ConceptId) -> Option<ConceptId> {
        self.complements[id.0 as usize]
    }

    fn insert(&mut self, kind: CKind) -> ConceptId {
        if let Some(&id) = self.ids.get(&kind) {
            return id;
        }
        let id = ConceptId(self.kinds.len() as u32);
        self.ids.insert(kind.clone(), id);
        self.kinds.push(kind);
        // Mix in a constant so ConceptId(0) does not hash to splitmix(0)'s
        // fixed point of the empty label (hash 0 is the empty label).
        self.mixes.push(splitmix(0xA076_1D64_78BD_642F ^ id.0 as u64));
        self.complements.push(None);
        id
    }

    fn intern_with_complement(&mut self, kind: CKind, complement: CKind) -> ConceptId {
        let id = self.insert(kind);
        if self.complements[id.0 as usize].is_none() {
            let neg = self.insert(complement);
            self.complements[id.0 as usize] = Some(neg);
            self.complements[neg.0 as usize] = Some(id);
        }
        id
    }

    /// Intern a concept (assumed to be in NNF, as all [`Concept`]
    /// constructors guarantee), canonicalizing `⊓`/`⊔` argument lists.
    pub fn intern(&mut self, c: &Concept) -> ConceptId {
        match c {
            Concept::Top => self.intern_with_complement(CKind::Top, CKind::Bottom),
            Concept::Bottom => self.intern_with_complement(CKind::Bottom, CKind::Top),
            Concept::Atomic(a) => {
                self.intern_with_complement(CKind::Atomic(*a), CKind::NotAtomic(*a))
            }
            Concept::NotAtomic(a) => {
                self.intern_with_complement(CKind::NotAtomic(*a), CKind::Atomic(*a))
            }
            Concept::And(cs) => {
                let ids = self.intern_children(cs);
                self.insert(CKind::And(ids))
            }
            Concept::Or(cs) => {
                let ids = self.intern_children(cs);
                self.insert(CKind::Or(ids))
            }
            Concept::Exists(r, body) => {
                let body = self.intern(body);
                self.insert(CKind::Exists(role_expr_id(*r), body))
            }
            Concept::ForAll(r, body) => {
                let body = self.intern(body);
                self.insert(CKind::ForAll(role_expr_id(*r), body))
            }
            Concept::AtLeast(n, r) => self.insert(CKind::AtLeast(*n, role_expr_id(*r))),
            Concept::AtMost(n, r) => self.insert(CKind::AtMost(*n, role_expr_id(*r))),
        }
    }

    /// Intern the NNF negation `¬c` **without materializing the negated
    /// tree**: the dual of every constructor case of [`Concept::not`],
    /// applied during the interning walk itself. `intern_negated(c)` is
    /// id-equal to `intern(&Concept::not(c.clone()))` for every `c`, but
    /// allocates no intermediate [`Concept`] — this is what lets
    /// [`crate::cache::SatCache::subsumes`] key `sub ⊓ ¬sup` queries
    /// without cloning either concept tree.
    pub fn intern_negated(&mut self, c: &Concept) -> ConceptId {
        match c {
            Concept::Top => self.intern_with_complement(CKind::Bottom, CKind::Top),
            Concept::Bottom => self.intern_with_complement(CKind::Top, CKind::Bottom),
            Concept::Atomic(a) => {
                self.intern_with_complement(CKind::NotAtomic(*a), CKind::Atomic(*a))
            }
            Concept::NotAtomic(a) => {
                self.intern_with_complement(CKind::Atomic(*a), CKind::NotAtomic(*a))
            }
            // De Morgan: the negation flips the connective, the children
            // are negated recursively.
            Concept::And(cs) => {
                let ids = self.intern_children_negated(cs);
                self.insert(CKind::Or(ids))
            }
            Concept::Or(cs) => {
                let ids = self.intern_children_negated(cs);
                self.insert(CKind::And(ids))
            }
            Concept::Exists(r, body) => {
                let body = self.intern_negated(body);
                self.insert(CKind::ForAll(role_expr_id(*r), body))
            }
            Concept::ForAll(r, body) => {
                let body = self.intern_negated(body);
                self.insert(CKind::Exists(role_expr_id(*r), body))
            }
            // ¬(≥n R) = ≤(n-1) R, except ¬(≥0 R) = ¬⊤ = ⊥.
            Concept::AtLeast(0, _) => self.intern_with_complement(CKind::Bottom, CKind::Top),
            Concept::AtLeast(n, r) => self.insert(CKind::AtMost(n - 1, role_expr_id(*r))),
            // ¬(≤n R) = ≥(n+1) R.
            Concept::AtMost(n, r) => self.insert(CKind::AtLeast(n + 1, role_expr_id(*r))),
        }
    }

    fn intern_children(&mut self, cs: &[Concept]) -> Box<[ConceptId]> {
        let mut ids: Vec<ConceptId> = cs.iter().map(|c| self.intern(c)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_boxed_slice()
    }

    fn intern_children_negated(&mut self, cs: &[Concept]) -> Box<[ConceptId]> {
        let mut ids: Vec<ConceptId> = cs.iter().map(|c| self.intern_negated(c)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_boxed_slice()
    }

    /// Rebuild the [`Concept`] tree of `id` (inverse of [`Arena::intern`]
    /// up to `⊓`/`⊔` argument order).
    pub fn resolve(&self, id: ConceptId) -> Concept {
        match self.kind(id) {
            CKind::Top => Concept::Top,
            CKind::Bottom => Concept::Bottom,
            CKind::Atomic(a) => Concept::Atomic(*a),
            CKind::NotAtomic(a) => Concept::NotAtomic(*a),
            CKind::And(ids) => Concept::And(ids.iter().map(|i| self.resolve(*i)).collect()),
            CKind::Or(ids) => Concept::Or(ids.iter().map(|i| self.resolve(*i)).collect()),
            CKind::Exists(r, body) => {
                Concept::Exists(role_expr_of(*r), Box::new(self.resolve(*body)))
            }
            CKind::ForAll(r, body) => {
                Concept::ForAll(role_expr_of(*r), Box::new(self.resolve(*body)))
            }
            CKind::AtLeast(n, r) => Concept::AtLeast(*n, role_expr_of(*r)),
            CKind::AtMost(n, r) => Concept::AtMost(*n, role_expr_of(*r)),
        }
    }
}

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_expr_id_round_trip() {
        for r in
            [RoleExpr::direct(0), RoleExpr::inv_of(0), RoleExpr::direct(7), RoleExpr::inv_of(7)]
        {
            assert_eq!(role_expr_of(role_expr_id(r)), r);
            assert_eq!(role_expr_of(invert_role_expr(role_expr_id(r))), r.inverse());
        }
    }

    #[test]
    fn interning_deduplicates_structurally() {
        let mut a = Arena::new();
        let c1 = Concept::Exists(RoleExpr::direct(0), Box::new(Concept::Atomic(3)));
        let c2 = Concept::Exists(RoleExpr::direct(0), Box::new(Concept::Atomic(3)));
        assert_eq!(a.intern(&c1), a.intern(&c2));
        let distinct = Concept::Exists(RoleExpr::inv_of(0), Box::new(Concept::Atomic(3)));
        assert_ne!(a.intern(&c1), a.intern(&distinct));
    }

    #[test]
    fn and_or_canonicalized_as_sets() {
        let mut a = Arena::new();
        let ab = Concept::And(vec![Concept::Atomic(0), Concept::Atomic(1)]);
        let ba = Concept::And(vec![Concept::Atomic(1), Concept::Atomic(0), Concept::Atomic(1)]);
        assert_eq!(a.intern(&ab), a.intern(&ba));
        let or1 = Concept::Or(vec![Concept::Atomic(0), Concept::Atomic(1)]);
        assert_ne!(a.intern(&ab), a.intern(&or1));
    }

    #[test]
    fn resolve_round_trips() {
        let mut a = Arena::new();
        let samples = [
            Concept::Top,
            Concept::Bottom,
            Concept::Atomic(4),
            Concept::NotAtomic(4),
            Concept::and([Concept::Atomic(0), Concept::some(RoleExpr::direct(1))]),
            Concept::or([
                Concept::AtMost(2, RoleExpr::inv_of(0)),
                Concept::AtLeast(1, RoleExpr::direct(2)),
            ]),
            Concept::ForAll(RoleExpr::inv_of(3), Box::new(Concept::NotAtomic(2))),
        ];
        for c in samples {
            let id = a.intern(&c);
            let back = a.resolve(id);
            // Round trip is exact up to And/Or ordering; re-interning the
            // resolved tree must reach the same id.
            assert_eq!(a.intern(&back), id, "{c} did not round-trip");
        }
    }

    #[test]
    fn nnf_invariants_survive_hash_consing() {
        // not(not(C)) interns to the same id as C, and the NNF dualities
        // hold at the id level.
        let mut a = Arena::new();
        let samples = [
            Concept::Atomic(0),
            Concept::and([Concept::Atomic(0), Concept::NotAtomic(1)]),
            Concept::Exists(RoleExpr::direct(0), Box::new(Concept::Atomic(1))),
            Concept::AtMost(2, RoleExpr::direct(1)),
        ];
        for c in samples {
            let id = a.intern(&c);
            let double_neg = a.intern(&Concept::not(Concept::not(c.clone())));
            assert_eq!(id, double_neg, "¬¬{c} changed id");
        }
        // Negation at the leaves only: interning ¬(A ⊓ B) yields an Or of
        // negated atoms, never a negated And.
        let neg = a.intern(&Concept::not(Concept::and([Concept::Atomic(0), Concept::Atomic(1)])));
        match a.kind(neg) {
            CKind::Or(ids) => {
                for i in ids.iter() {
                    assert!(matches!(a.kind(*i), CKind::NotAtomic(_)));
                }
            }
            other => panic!("expected Or of negated atoms, got {other:?}"),
        }
    }

    #[test]
    fn intern_negated_matches_interned_negation() {
        let mut a = Arena::new();
        let samples = [
            Concept::Top,
            Concept::Bottom,
            Concept::Atomic(2),
            Concept::NotAtomic(2),
            Concept::and([Concept::Atomic(0), Concept::NotAtomic(1)]),
            Concept::or([Concept::Atomic(0), Concept::some(RoleExpr::direct(1))]),
            Concept::Exists(RoleExpr::inv_of(0), Box::new(Concept::Atomic(3))),
            Concept::ForAll(RoleExpr::direct(2), Box::new(Concept::NotAtomic(3))),
            Concept::AtLeast(0, RoleExpr::direct(0)),
            Concept::AtLeast(3, RoleExpr::direct(0)),
            Concept::AtMost(2, RoleExpr::inv_of(1)),
            Concept::and([
                Concept::Atomic(0),
                Concept::or([Concept::NotAtomic(1), Concept::AtMost(1, RoleExpr::direct(0))]),
            ]),
        ];
        for c in samples {
            let via_tree = a.intern(&Concept::not(c.clone()));
            let direct = a.intern_negated(&c);
            assert_eq!(direct, via_tree, "intern_negated diverged on ¬({c})");
            // Double negation through the id-level path agrees with the
            // tree path too (they coincide with `c` except for `≥0 R`,
            // where NNF collapses ¬¬(≥0 R) to ⊤ on both paths).
            let resolved = a.resolve(direct);
            let back = a.intern_negated(&resolved);
            let via_trees = a.intern(&Concept::not(Concept::not(c.clone())));
            assert_eq!(back, via_trees, "¬¬({c}) diverged between paths");
        }
    }

    #[test]
    fn atom_complements_are_mutual() {
        let mut a = Arena::new();
        let p = a.intern(&Concept::Atomic(5));
        let np = a.intern(&Concept::NotAtomic(5));
        assert_eq!(a.atom_complement(p), Some(np));
        assert_eq!(a.atom_complement(np), Some(p));
        let top = a.intern(&Concept::Top);
        let bot = a.intern(&Concept::Bottom);
        assert_eq!(a.atom_complement(top), Some(bot));
        // Complex concepts carry no complement.
        let ex = a.intern(&Concept::some(RoleExpr::direct(0)));
        assert_eq!(a.atom_complement(ex), None);
    }

    #[test]
    fn mixes_are_distinct_and_stable() {
        let mut a = Arena::new();
        let x = a.intern(&Concept::Atomic(0));
        let y = a.intern(&Concept::Atomic(1));
        assert_ne!(a.mix(x), a.mix(y));
        let x_again = a.intern(&Concept::Atomic(0));
        assert_eq!(a.mix(x), a.mix(x_again));
        // XOR self-inverse: inserting then removing restores the label hash.
        let mut h = 0u64;
        h ^= a.mix(x);
        h ^= a.mix(y);
        h ^= a.mix(x);
        h ^= a.mix(y);
        assert_eq!(h, 0);
    }
}
