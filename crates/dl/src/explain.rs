//! Unsat-core extraction: *which axioms* make a query unsatisfiable.
//!
//! A bare `Unsat` verdict tells an ORM modeler that a type or role can
//! never be populated — but not which of the schema's constraints gang up
//! on it. This module turns a refutation into a **minimal unsat core**: a
//! set of TBox axioms that (a) still refutes the query on its own and
//! (b) stops refuting it when any single axiom is removed. Mapped back
//! through the `orm_to_dl` provenance table and verbalized, the core *is*
//! the diagnosis the paper's interactive scenario calls for.
//!
//! # Algorithm
//!
//! 1. **Seed** — run the tableau with axiom-usage tracking
//!    ([`crate::tableau::satisfiable_with_conflict`]). Every derived fact
//!    carries the set of axioms it transitively rests on, so the final
//!    conflict names a (conservative, possibly saturated) superset of one
//!    refutation's axioms — usually far smaller than the whole TBox.
//! 2. **Verify** — re-prove the query against the seed's restriction
//!    ([`crate::tbox::TBox::restrict_to`]). The usage sets are heuristic;
//!    only an actual `Unsat` run over the restricted TBox certifies the
//!    seed. An unconfirmed seed falls back to the full axiom set (which
//!    step 1 proved unsatisfiable).
//! 3. **Shrink** — deletion-based minimization: drop one axiom at a time
//!    and keep the deletion whenever the rest still refutes the query.
//!    Each "still refutes" probe again runs with tracking, and the probe's
//!    own (verified) conflict set can discard *several* axioms at once —
//!    the backjumping conflict sets double as a core-refinement
//!    accelerator. Satisfiability is anti-monotone in the axiom set
//!    (removing axioms only grows the model class), so an axiom whose
//!    removal once made the query satisfiable can never re-enter: the
//!    final set is minimal in one left-to-right pass.
//!
//! # Guarantees
//!
//! * Every returned core is itself unsatisfiable for the query — certified
//!   by an actual tableau run, never inferred from the usage sets.
//! * When [`UnsatCore::minimal`] is `true` (every probe reached a
//!   definitive verdict), removing any single axiom from the core flips
//!   the verdict to `Sat`. A probe that dies on the budget keeps its axiom
//!   conservatively and clears the flag: the core is still a certified
//!   unsat core, just possibly not minimal.
//! * The outcome classification always agrees with the plain
//!   [`crate::tableau::satisfiable`] verdict: `Unsat(_)` exactly when the
//!   plain run answers `Unsat`.
//!
//! The differential property tests in `tests/explain_dl.rs` pin all three
//! guarantees across random schemas.
//!
//! # Beyond one core
//!
//! One MUS names one contradiction; a schema with several independent
//! ones deserves all of them at once. [`enumerate_mus`] lifts the
//! extractor into a MARCO-style enumeration over the axiom powerset
//! (found MUSes *block* their supersets, so each is discovered exactly
//! once), and [`repair_sets`] / [`ranked_repairs`] turn the family into
//! ⊆-minimal **hitting sets** — candidate repairs, each re-proved `Sat`
//! against the TBox minus the repair and ranked by edit recency from the
//! delta log. See `docs/EXPLANATIONS.md` for the full algorithm.

use crate::concept::Concept;
use crate::exec::ExecCx;
use crate::tableau::{
    satisfiable, satisfiable_cx, satisfiable_with_conflict_cx, DlOutcome, SearchOutcome,
};
use crate::tbox::{AxiomId, TBox};

/// A certified unsat core: axioms whose restriction still refutes the
/// query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatCore {
    /// The core's axioms, sorted by provenance id. May be empty: a query
    /// like `A ⊓ ¬A` is self-contradictory under the empty terminology.
    pub axioms: Vec<AxiomId>,
    /// Whether minimality is certified: `true` when every deletion probe
    /// reached a definitive verdict, so removing any single axiom is
    /// *known* to make the query satisfiable. `false` only when a probe
    /// ran out of budget and its axiom was kept conservatively.
    pub minimal: bool,
}

impl UnsatCore {
    /// Number of axioms in the core.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the core is empty (the query is self-contradictory).
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }
}

/// Outcome of an explanation request — the same three-way split as
/// [`DlOutcome`], with the `Unsat` arm carrying its core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Explanation {
    /// The query is unsatisfiable; here is a certified core.
    Unsat(UnsatCore),
    /// The query is satisfiable — nothing to explain.
    Satisfiable,
    /// The budget ran out before the *initial* verdict was certain.
    ResourceLimit,
}

impl Explanation {
    /// The plain verdict this explanation corresponds to (what
    /// [`crate::tableau::satisfiable`] would have answered).
    pub fn verdict(&self) -> DlOutcome {
        match self {
            Explanation::Unsat(_) => DlOutcome::Unsat,
            Explanation::Satisfiable => DlOutcome::Sat,
            Explanation::ResourceLimit => DlOutcome::ResourceLimit,
        }
    }

    /// The core, when unsatisfiable.
    pub fn core(&self) -> Option<&UnsatCore> {
        match self {
            Explanation::Unsat(core) => Some(core),
            _ => None,
        }
    }
}

/// Whether `candidate`'s restriction refutes `query`, reporting the
/// probe's own conflict seed for refinement. Runs under the caller's
/// execution context — one per-proof step budget per probe (exactly the
/// legacy per-probe `budget` semantics), with the context's cancellation
/// token and deadline checked cooperatively inside the tableau, so a
/// whole extraction stops within one probe of an interrupt.
fn probe(
    tbox: &TBox,
    candidate: &[AxiomId],
    query: &Concept,
    cx: &ExecCx,
) -> (SearchOutcome, Option<Vec<AxiomId>>) {
    let sub = tbox.restrict_to(candidate);
    let (verdict, conflict) = satisfiable_with_conflict_cx(&sub, query, cx);
    // The restricted TBox numbers its axioms 0..n in `candidate` order:
    // map the conflict back to the caller's provenance ids.
    let mapped = conflict.map(|ids| {
        let mut back: Vec<AxiomId> = ids
            .into_iter()
            .map(|id| {
                // Position of the restricted id in flat order == position
                // in `candidate` grouped by kind; recover it by counting.
                let flat = sub
                    .axiom_ids()
                    .position(|x| x == id)
                    .expect("conflict ids come from the restricted TBox");
                // `restrict_to` pushes axioms in `candidate` order, and
                // flat order groups by kind — rebuild the mapping.
                candidate_flat_to_original(candidate, flat)
            })
            .collect();
        back.sort_unstable();
        back.dedup();
        back
    });
    (verdict, mapped)
}

/// The original id at flat position `flat` of `restrict_to(candidate)`:
/// the restriction preserves each kind's relative order, and flat order
/// lists GCIs, then role inclusions, then disjointness.
fn candidate_flat_to_original(candidate: &[AxiomId], flat: usize) -> AxiomId {
    use crate::tbox::AxiomKind::{Disjointness, Gci, RoleInclusion};
    let mut in_order: Vec<&AxiomId> = Vec::with_capacity(candidate.len());
    for kind in [Gci, RoleInclusion, Disjointness] {
        in_order.extend(candidate.iter().filter(|a| a.kind == kind));
    }
    *in_order[flat]
}

/// Compute a minimal unsat core of `query` against `tbox` (see the
/// [module docs](self) for the algorithm and guarantees). Each internal
/// tableau probe runs under the same `budget` as the initial check.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::explain::{explain_unsat, Explanation};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// let ab = tbox.gci(a.clone(), b.clone());
/// let doom = tbox.gci(Concept::and([a.clone(), b.clone()]), Concept::Bottom);
/// tbox.gci(b.clone(), Concept::Top); // irrelevant noise
///
/// match explain_unsat(&tbox, &a, 100_000) {
///     Explanation::Unsat(core) => {
///         assert_eq!(core.axioms, vec![ab, doom]);
///         assert!(core.minimal);
///     }
///     other => panic!("expected a core, got {other:?}"),
/// }
/// assert_eq!(explain_unsat(&tbox, &b, 100_000), Explanation::Satisfiable);
/// ```
pub fn explain_unsat(tbox: &TBox, query: &Concept, budget: u64) -> Explanation {
    explain_unsat_cx(tbox, query, &ExecCx::with_steps(budget))
}

/// [`explain_unsat`] under an execution context: every internal probe
/// inherits `cx` — its per-proof step budget plays the legacy per-probe
/// `budget` role, and its cancellation token and deadline are observed
/// inside each tableau run, so the extraction stops within one probe of
/// an interrupt. An interrupt before the initial verdict classifies as
/// [`Explanation::ResourceLimit`] (the caller distinguishes interruption
/// by checking `cx` itself); an interrupt *during* minimization returns
/// the certified core found so far with [`UnsatCore::minimal`] cleared —
/// never a wrong or uncertified answer.
pub fn explain_unsat_cx(tbox: &TBox, query: &Concept, cx: &ExecCx) -> Explanation {
    // The minimization probes run the tableau against *weakened* TBoxes,
    // whose searches can legitimately open thousands of decision levels
    // within the budget (the axioms that used to close branches early are
    // exactly what got deleted). `Engine::search` recurses once per open
    // level, so the whole extraction runs on a scoped worker thread with
    // a stack sized for the worst case rather than for the caller's.
    with_deep_stack(|| explain_unsat_inner(tbox, query, cx))
}

/// Run `f` on a scoped worker thread whose stack fits a worst-case
/// tableau search (the engine recurses one `search` frame per open
/// decision level, and weakened-TBox probes can open thousands within an
/// ample budget). [`explain_unsat`] wraps its own work in this; callers
/// that drive `satisfiable` directly against [`TBox::restrict_to`]
/// outputs — verification harnesses, benches, property tests — should
/// do the same rather than size their own threads.
pub fn with_deep_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    const DEEP_STACK: usize = 64 * 1024 * 1024;
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("orm-dl-deep-stack".into())
            .stack_size(DEEP_STACK)
            .spawn_scoped(scope, f)
            .expect("spawn deep-stack worker")
            .join()
            .expect("deep-stack worker panicked")
    })
}

fn explain_unsat_inner(tbox: &TBox, query: &Concept, cx: &ExecCx) -> Explanation {
    let (verdict, conflict) = satisfiable_with_conflict_cx(tbox, query, cx);
    match verdict {
        SearchOutcome::Sat => return Explanation::Satisfiable,
        SearchOutcome::BudgetExhausted
        | SearchOutcome::Cancelled
        | SearchOutcome::DeadlineExceeded => return Explanation::ResourceLimit,
        SearchOutcome::Unsat => {}
    }
    let all: Vec<AxiomId> = tbox.axiom_ids().collect();
    // Step 2: verify the seed; fall back to the full set when the
    // restriction fails to refute (the usage sets are heuristic). The
    // verifying probe's own, smaller conflict is adopted only after a
    // verification probe of its own — like every refinement in step 3,
    // it is a heuristic mask until an actual run certifies it.
    let seed = conflict.expect("unsat carries a conflict");
    let core = if seed.len() < all.len() {
        match probe(tbox, &seed, query, cx) {
            (SearchOutcome::Unsat, refined) => match refined {
                Some(r) if r.len() < seed.len() => match probe(tbox, &r, query, cx) {
                    (SearchOutcome::Unsat, _) => r,
                    _ => seed,
                },
                _ => seed,
            },
            _ => all.clone(),
        }
    } else {
        all.clone()
    };
    Explanation::Unsat(minimize(tbox, query, cx, core))
}

/// Compute an unsat core of `query` starting from a **warm seed**: axiom
/// ids whose restriction is suspected (not required) to refute the query —
/// typically a certified core extracted for a *different* element of the
/// same schema, whose doom usually rests on the same axiom cluster.
///
/// The seed is probed first. If its restriction certifiably refutes the
/// query, minimization starts from the seed and the full-TBox tableau run
/// that dominates [`explain_unsat`]'s cold path is **skipped entirely** —
/// sound because satisfiability is anti-monotone in the axiom set: a
/// refuting restriction means the full TBox refutes too. A seed that fails
/// to refute (or exhausts its probe budget) costs one probe and falls back
/// to the cold path. Unknown axiom ids in the seed are ignored.
pub fn explain_unsat_seeded(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
    seed: &[AxiomId],
) -> Explanation {
    explain_unsat_seeded_cx(tbox, query, &ExecCx::with_steps(budget), seed)
}

/// [`explain_unsat_seeded`] under an execution context (see
/// [`explain_unsat_cx`] for the interrupt semantics the probes inherit).
pub fn explain_unsat_seeded_cx(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    seed: &[AxiomId],
) -> Explanation {
    with_deep_stack(|| explain_unsat_seeded_inner(tbox, query, cx, seed))
}

fn explain_unsat_seeded_inner(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    seed: &[AxiomId],
) -> Explanation {
    let known: Vec<AxiomId> = {
        let present: std::collections::HashSet<AxiomId> = tbox.axiom_ids().collect();
        let mut k: Vec<AxiomId> = seed.iter().copied().filter(|a| present.contains(a)).collect();
        k.sort_unstable();
        k.dedup();
        k
    };
    // Seeding with every axiom proves nothing the cold path would not.
    if known.is_empty() || known.len() >= tbox.axiom_count() {
        return explain_unsat_inner(tbox, query, cx);
    }
    match probe(tbox, &known, query, cx) {
        (SearchOutcome::Unsat, refined) => {
            let core = match refined {
                Some(r) if r.len() < known.len() => match probe(tbox, &r, query, cx) {
                    (SearchOutcome::Unsat, _) => r,
                    _ => known,
                },
                _ => known,
            };
            Explanation::Unsat(minimize(tbox, query, cx, core))
        }
        _ => explain_unsat_inner(tbox, query, cx),
    }
}

/// Deletion-minimize a **certified** core (its restriction is already
/// known to refute `query`) — step 3 of the [module docs](self), shared
/// by the cold and the seeded extraction paths.
fn minimize(tbox: &TBox, query: &Concept, cx: &ExecCx, mut core: Vec<AxiomId>) -> UnsatCore {
    core.sort_unstable();
    core.dedup();
    // Deletion minimization with conflict refinement. Invariant:
    // `core`'s restriction is certified Unsat; every axiom before `i` is
    // needed (its sole removal was probed Sat against a superset of the
    // final core — anti-monotonicity transfers that to the final core).
    let mut minimal = true;
    let mut i = 0;
    while i < core.len() {
        if cx.check().is_err() {
            // Interrupted mid-minimization: the invariant still certifies
            // `core` as an unsat core — return it, minus the minimality
            // claim, instead of burning a no-op probe per remaining axiom.
            minimal = false;
            break;
        }
        let mut candidate = core.clone();
        let removed = candidate.remove(i);
        match probe(tbox, &candidate, query, cx) {
            (SearchOutcome::Unsat, refined) => {
                // Drop `removed` for good; adopt the probe's smaller
                // conflict when it verifies (one extra probe), else the
                // candidate itself. `i` stays: a new axiom now sits here.
                core = match refined {
                    Some(seed) if seed.len() < candidate.len() => {
                        match probe(tbox, &seed, query, cx) {
                            (SearchOutcome::Unsat, _) => {
                                // The jump may strip already-vetted
                                // axioms; restart the scan over the
                                // smaller set (still terminates: the set
                                // shrank strictly).
                                i = 0;
                                seed
                            }
                            _ => candidate,
                        }
                    }
                    _ => candidate,
                };
            }
            (SearchOutcome::Sat, _) => i += 1,
            _ => {
                // Could not decide (budget, cancellation, or deadline):
                // keep the axiom, lose the minimality certificate.
                let _ = removed;
                minimal = false;
                i += 1;
            }
        }
    }
    UnsatCore { axioms: core, minimal }
}

/// Convenience: whether `core` (alone) certifiably refutes `query` — the
/// check the property tests and the bench harness run against every
/// extracted core.
pub fn core_refutes(tbox: &TBox, core: &UnsatCore, query: &Concept, budget: u64) -> bool {
    satisfiable(&tbox.restrict_to(&core.axioms), query, budget) == DlOutcome::Unsat
}

/// [`core_refutes`] under an execution context — `true` only on a
/// certified `Unsat` run; an interrupted check conservatively reports
/// `false` (the caller must not emit what it could not certify).
pub fn core_refutes_cx(tbox: &TBox, core: &UnsatCore, query: &Concept, cx: &ExecCx) -> bool {
    satisfiable_cx(&tbox.restrict_to(&core.axioms), query, cx) == SearchOutcome::Unsat
}

/// The enumerated family of minimal unsat cores (MUSes) of one query —
/// what [`enumerate_mus`] returns inside [`MusEnumeration::Unsat`].
///
/// Every core in the family is individually certified (its restriction
/// refutes the query, re-proved by [`core_refutes`] before emission) and
/// the cores are pairwise ⊆-incomparable by construction. The two flags
/// qualify the *family*:
///
/// * [`MusFamily::truncated`] — enumeration stopped at the caller's
///   `limit` with candidate subsets still unexplored; more MUSes may
///   exist.
/// * [`MusFamily::complete`] — the family provably contains **every**
///   MUS: enumeration drained its worklist (`!truncated`) and every probe
///   along the way reached a definitive verdict. A probe dying on the
///   budget (or an uncertified refinement) clears this conservatively;
///   the emitted cores are still individually certified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MusFamily {
    /// The certified cores, in discovery order (the single-core
    /// extractor's result first).
    pub cores: Vec<UnsatCore>,
    /// Enumeration hit the `limit` cap with work left: there may be more
    /// MUSes than reported.
    pub truncated: bool,
    /// Every MUS of the query is in `cores` — certified by a fully
    /// decisive, drained exploration.
    pub complete: bool,
}

impl MusFamily {
    /// Number of enumerated cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the family holds no cores (never the case inside
    /// [`MusEnumeration::Unsat`]).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }
}

/// Outcome of a MUS-enumeration request — the same three-way split as
/// [`Explanation`], with the `Unsat` arm carrying the whole family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MusEnumeration {
    /// The query is unsatisfiable; here is its (possibly capped) family
    /// of certified minimal unsat cores.
    Unsat(MusFamily),
    /// The query is satisfiable — nothing to enumerate.
    Satisfiable,
    /// The budget ran out before the *initial* verdict was certain.
    ResourceLimit,
}

impl MusEnumeration {
    /// The plain verdict this enumeration corresponds to.
    pub fn verdict(&self) -> DlOutcome {
        match self {
            MusEnumeration::Unsat(_) => DlOutcome::Unsat,
            MusEnumeration::Satisfiable => DlOutcome::Sat,
            MusEnumeration::ResourceLimit => DlOutcome::ResourceLimit,
        }
    }

    /// The family, when unsatisfiable.
    pub fn family(&self) -> Option<&MusFamily> {
        match self {
            MusEnumeration::Unsat(family) => Some(family),
            _ => None,
        }
    }
}

/// Whether sorted `sub` is a subset of sorted `sup` (two-pointer scan —
/// every candidate set in the enumerator is kept sorted and deduplicated).
fn sorted_subset(sub: &[AxiomId], sup: &[AxiomId]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|a| it.any(|b| b == a))
}

/// Enumerate **all** (or the first `limit`) minimal unsat cores of
/// `query` against `tbox` — the MARCO-style grow/shrink loop over the
/// axiom powerset (see `docs/EXPLANATIONS.md`).
///
/// The first MUS comes from the efficient single-core extractor
/// ([`explain_unsat`]'s conflict-seeded path). Each further candidate
/// subset `S` is handled by *blocking*: if some already-found MUS `M ⊆ S`
/// then `S` cannot yield a new MUS directly (any other MUS `M' ⊆ S` must
/// avoid some axiom of `M`, both being minimal and distinct), so the
/// enumerator skips the probe and branches into `S ∖ {a}` for each
/// `a ∈ M`. An unblocked `S` is probed via [`TBox::restrict_to`]: `Sat`
/// closes the branch, `Unsat` shrinks within `S` to a fresh MUS
/// (deletion-minimization never leaves `S`, and minimality/refutation are
/// properties of the restriction alone — independent of the ambient set —
/// so the result is a genuine MUS of the full TBox), which is re-certified
/// by [`core_refutes`] before emission and then blocks its own branches.
/// This branching is complete: every MUS is reachable by excluding, one
/// by one, the axioms of the MUSes it avoids.
///
/// Duplicates are impossible (a shrink inside `S` reproducing a found `M`
/// would mean `M ⊆ S`, contradicting the blocking pre-check), which also
/// makes the emitted cores pairwise ⊆-incomparable.
///
/// `limit` caps the family at top-k (`0` is promoted to `1`;
/// `usize::MAX` means "all"); hitting the cap with work left sets
/// [`MusFamily::truncated`]. Runs on the same deep-stack worker as
/// [`explain_unsat`].
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::explain::{enumerate_mus, MusEnumeration};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// // Two independent refutations of A: A ⊑ ⊥ and A ⊑ B, B ⊑ ⊥.
/// let doom1 = tbox.gci(a.clone(), Concept::Bottom);
/// let ab = tbox.gci(a.clone(), b.clone());
/// let doom2 = tbox.gci(b.clone(), Concept::Bottom);
///
/// let MusEnumeration::Unsat(family) = enumerate_mus(&tbox, &a, 100_000, usize::MAX) else {
///     panic!("A is doomed");
/// };
/// assert!(family.complete && !family.truncated);
/// let mut cores: Vec<_> = family.cores.iter().map(|c| c.axioms.clone()).collect();
/// cores.sort();
/// assert_eq!(cores, vec![vec![doom1], vec![ab, doom2]]);
/// ```
pub fn enumerate_mus(tbox: &TBox, query: &Concept, budget: u64, limit: usize) -> MusEnumeration {
    enumerate_mus_cx(tbox, query, &ExecCx::with_steps(budget), limit)
}

/// [`enumerate_mus`] under an execution context: the whole MARCO loop —
/// first extraction, blocking-tree probes, per-MUS minimizations —
/// inherits `cx`, so a cancellation or deadline **stops the enumeration
/// cleanly mid-family**: the cores certified so far are returned with
/// [`MusFamily::truncated`] set and [`MusFamily::complete`] cleared
/// (an interrupt before the initial verdict classifies as
/// [`MusEnumeration::ResourceLimit`]). No partial or uncertified core is
/// ever emitted.
pub fn enumerate_mus_cx(tbox: &TBox, query: &Concept, cx: &ExecCx, limit: usize) -> MusEnumeration {
    with_deep_stack(|| enumerate_mus_inner(tbox, query, cx, limit, &[]))
}

/// [`enumerate_mus`] with a warm-start seed for the *first* extraction
/// (the [`explain_unsat_seeded`] fast path — typically the pooled core
/// axioms of other elements of the same schema). The seed only steers how
/// the first MUS is found; every emitted core is certified the same way.
pub fn enumerate_mus_seeded(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
    limit: usize,
    seed: &[AxiomId],
) -> MusEnumeration {
    enumerate_mus_seeded_cx(tbox, query, &ExecCx::with_steps(budget), limit, seed)
}

/// [`enumerate_mus_seeded`] under an execution context (see
/// [`enumerate_mus_cx`] for the clean mid-family stop semantics).
pub fn enumerate_mus_seeded_cx(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    limit: usize,
    seed: &[AxiomId],
) -> MusEnumeration {
    with_deep_stack(|| enumerate_mus_inner(tbox, query, cx, limit, seed))
}

fn enumerate_mus_inner(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    limit: usize,
    seed: &[AxiomId],
) -> MusEnumeration {
    let first = if seed.is_empty() {
        explain_unsat_inner(tbox, query, cx)
    } else {
        explain_unsat_seeded_inner(tbox, query, cx, seed)
    };
    let first_core = match first {
        Explanation::Unsat(core) => core,
        Explanation::Satisfiable => return MusEnumeration::Satisfiable,
        Explanation::ResourceLimit => return MusEnumeration::ResourceLimit,
    };
    let limit = limit.max(1);
    let mut decisive = first_core.minimal;
    let mut cores: Vec<UnsatCore> = vec![first_core];
    let all: Vec<AxiomId> = tbox.axiom_ids().collect();
    let mut work: Vec<Vec<AxiomId>> = vec![all];
    let mut visited: std::collections::HashSet<Vec<AxiomId>> = std::collections::HashSet::new();
    let mut truncated = false;
    while let Some(s) = work.pop() {
        if cx.check().is_err() {
            // Interrupted mid-family: stop cleanly with the cores
            // certified so far. `truncated` tells the caller the family
            // may be larger; `decisive = false` below clears `complete`.
            truncated = true;
            decisive = false;
            break;
        }
        if !visited.insert(s.clone()) {
            continue;
        }
        // Blocking: a found MUS inside `s` means no *new* MUS can be the
        // shrink result here — branch straight into its exclusions.
        // Branching on the smallest such MUS keeps the tree narrow.
        if let Some(m) =
            cores.iter().filter(|m| sorted_subset(&m.axioms, &s)).min_by_key(|m| m.len())
        {
            for &a in &m.axioms {
                let mut child: Vec<AxiomId> = s.iter().copied().filter(|&x| x != a).collect();
                child.shrink_to_fit();
                work.push(child);
            }
            continue;
        }
        match probe(tbox, &s, query, cx) {
            (SearchOutcome::Sat, _) => {}
            (
                SearchOutcome::BudgetExhausted
                | SearchOutcome::Cancelled
                | SearchOutcome::DeadlineExceeded,
                _,
            ) => decisive = false,
            (SearchOutcome::Unsat, refined) => {
                // Adopt the probe's own (verified) smaller conflict as the
                // shrink start; it stays within `s` by construction.
                let start = match refined {
                    Some(r) if r.len() < s.len() => match probe(tbox, &r, query, cx) {
                        (SearchOutcome::Unsat, _) => r,
                        _ => s.clone(),
                    },
                    _ => s.clone(),
                };
                let core = minimize(tbox, query, cx, start);
                decisive &= core.minimal;
                // Re-certify before emitting — never trust masks.
                if core_refutes_cx(tbox, &core, query, cx) {
                    if cores.len() >= limit {
                        // A fresh MUS exists beyond the cap.
                        truncated = true;
                        break;
                    }
                    visited.remove(&s);
                    work.push(s);
                    cores.push(core);
                } else {
                    decisive = false;
                }
            }
        }
    }
    let complete = !truncated && decisive;
    MusEnumeration::Unsat(MusFamily { cores, truncated, complete })
}

/// A candidate repair: a ⊆-minimal set of axioms hitting every enumerated
/// core, i.e. removing them breaks **all** known refutations at once.
///
/// Produced unverified by [`repair_sets`] (a pure hitting-set
/// computation) and verified + ranked by [`ranked_repairs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairSet {
    /// The axioms to drop, sorted by provenance id.
    pub axioms: Vec<AxiomId>,
    /// Whether removing exactly these axioms was re-proved to make the
    /// query satisfiable (never assumed — a hitting set of a truncated or
    /// incomplete family can miss an unenumerated MUS). `false` until
    /// [`ranked_repairs`] proves it.
    pub verified: bool,
    /// The most recent delta-log position among the repair's axioms
    /// ([`TBox::axiom_recency`]) — the ranking key: a modeler most likely
    /// wants to undo the *latest* edit involved in the contradiction.
    /// `None` until ranked (or when no axiom resolves against the log).
    pub recency: Option<u64>,
}

impl RepairSet {
    /// Number of axioms the repair removes.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the repair removes nothing (never returned: an empty
    /// hitting set would mean there were no cores to hit).
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }
}

/// Safety valve on the raw hitting-set recursion: the branch tree is
/// bounded by the product of core sizes, tiny on real diagnoses (cores
/// average ~2.6 axioms, families a handful of cores) but a pathological
/// family could blow it up.
const MAX_RAW_HITTING_SETS: usize = 65_536;

/// All ⊆-minimal hitting sets of `cores` — the candidate repairs: every
/// core loses at least one axiom, so every *known* refutation breaks.
///
/// Branch-and-bound on the first un-hit core (Reiter's HS-tree): each of
/// its axioms is one child branch, so every minimal hitting set is the
/// label set of some root-to-leaf path; non-minimal and duplicate leaves
/// are filtered afterwards. The recursion depth is bounded by the number
/// of cores (each level hits one more core), which bounds repair size the
/// same way.
///
/// A core with **no axioms** (a self-contradictory query) cannot be hit:
/// the result is empty — no axiom removal can repair such an element.
/// The returned sets are unverified ([`RepairSet::verified`] is `false`):
/// hitting every *enumerated* core only guarantees satisfiability when
/// the family is complete — use [`ranked_repairs`] to re-prove each.
pub fn repair_sets(cores: &[UnsatCore]) -> Vec<RepairSet> {
    if cores.is_empty() || cores.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    fn recurse(cores: &[UnsatCore], partial: &mut Vec<AxiomId>, out: &mut Vec<Vec<AxiomId>>) {
        if out.len() >= MAX_RAW_HITTING_SETS {
            return;
        }
        match cores.iter().find(|c| !c.axioms.iter().any(|a| partial.contains(a))) {
            None => {
                let mut hit = partial.clone();
                hit.sort_unstable();
                out.push(hit);
            }
            Some(unhit) => {
                for &a in &unhit.axioms {
                    partial.push(a);
                    recurse(cores, partial, out);
                    partial.pop();
                }
            }
        }
    }
    let mut raw = Vec::new();
    recurse(cores, &mut Vec::new(), &mut raw);
    raw.sort();
    raw.dedup();
    // Keep only the ⊆-minimal sets (the complete branching emits every
    // minimal hitting set, plus supersets reached along other paths).
    let minimal: Vec<Vec<AxiomId>> = raw
        .iter()
        .filter(|h| !raw.iter().any(|other| other.len() < h.len() && sorted_subset(other, h)))
        .cloned()
        .collect();
    minimal.into_iter().map(|axioms| RepairSet { axioms, verified: false, recency: None }).collect()
}

/// The repairs of `family`, **verified and ranked**: each ⊆-minimal
/// hitting set of the enumerated cores is re-proved by running the
/// tableau against the TBox minus the repair (never assumed — an
/// incomplete family can hide an unenumerated MUS that survives the
/// removal), unverifiable candidates are dropped, and the survivors are
/// ranked by **edit recency** from the delta log
/// ([`TBox::axiom_recency`]): most recently edited first, then smaller
/// repairs, then lexicographic axiom order — a total, deterministic
/// order, so re-ranking against the same log is stable.
pub fn ranked_repairs(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
    family: &MusFamily,
) -> Vec<RepairSet> {
    ranked_repairs_cx(tbox, query, &ExecCx::with_steps(budget), family)
}

/// [`ranked_repairs`] under an execution context: each verification
/// probe inherits `cx`; an interrupt drops the remaining *unverified*
/// candidates (every returned repair is still individually re-proved
/// `Sat`) — the context-aware analogue of a truncated family.
pub fn ranked_repairs_cx(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    family: &MusFamily,
) -> Vec<RepairSet> {
    with_deep_stack(|| ranked_repairs_inner(tbox, query, cx, family))
}

fn ranked_repairs_inner(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
    family: &MusFamily,
) -> Vec<RepairSet> {
    let mut repairs: Vec<RepairSet> = repair_sets(&family.cores)
        .into_iter()
        .filter_map(|mut repair| {
            if cx.check().is_err() {
                return None;
            }
            let keep: Vec<AxiomId> =
                tbox.axiom_ids().filter(|a| !repair.axioms.contains(a)).collect();
            if satisfiable_cx(&tbox.restrict_to(&keep), query, cx) != SearchOutcome::Sat {
                return None;
            }
            repair.verified = true;
            repair.recency = repair.axioms.iter().filter_map(|&a| tbox.axiom_recency(a)).max();
            Some(repair)
        })
        .collect();
    repairs.sort_by(|a, b| {
        b.recency
            .cmp(&a.recency)
            .then(a.axioms.len().cmp(&b.axioms.len()))
            .then(a.axioms.cmp(&b.axioms))
    });
    repairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::RoleExpr;

    const BUDGET: u64 = 200_000;

    #[test]
    fn empty_core_for_self_contradiction() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Top);
        let query = Concept::and([a.clone(), Concept::not(a.clone())]);
        match explain_unsat(&t, &query, BUDGET) {
            Explanation::Unsat(core) => {
                assert!(core.is_empty(), "self-contradiction needs no axioms: {core:?}");
                assert!(core.minimal);
                assert!(core_refutes(&t, &core, &query, BUDGET));
            }
            other => panic!("expected a core, got {other:?}"),
        }
    }

    #[test]
    fn core_picks_the_guilty_axioms_only() {
        // Fig. 1 shape: Phd ⊑ Student, Phd ⊑ Employee,
        // Student ⊓ Employee ⊑ ⊥ — plus unrelated noise.
        let mut t = TBox::new();
        let person = Concept::Atomic(t.atom("Person"));
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let phd = Concept::Atomic(t.atom("Phd"));
        let _n1 = t.gci(student.clone(), person.clone());
        let _n2 = t.gci(employee.clone(), person.clone());
        let g1 = t.gci(phd.clone(), student.clone());
        let g2 = t.gci(phd.clone(), employee.clone());
        let g3 = t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);
        match explain_unsat(&t, &phd, BUDGET) {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3], "core picked wrong axioms");
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // The other types explain as satisfiable.
        for ty in [person, student, employee] {
            assert_eq!(explain_unsat(&t, &ty, BUDGET), Explanation::Satisfiable);
        }
    }

    #[test]
    fn role_axioms_appear_in_cores() {
        // ∃F.⊤ doomed through a role inclusion into a self-disjoint role.
        let mut t = TBox::new();
        let f = RoleExpr::direct(t.role("F"));
        let g = RoleExpr::direct(t.role("G"));
        let noise = Concept::Atomic(t.atom("Noise"));
        t.gci(noise.clone(), Concept::Top);
        let ri = t.role_inclusion(f, g);
        let dj = t.disjoint(g, g);
        let query = Concept::some(f);
        match explain_unsat(&t, &query, BUDGET) {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![ri, dj]);
                assert!(core.minimal);
                assert!(core_refutes(&t, &core, &query, BUDGET));
            }
            other => panic!("expected a core, got {other:?}"),
        }
    }

    #[test]
    fn minimality_holds_on_each_axiom() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let c = Concept::Atomic(t.atom("C"));
        t.gci(a.clone(), b.clone());
        t.gci(b.clone(), c.clone());
        t.gci(c.clone(), Concept::Bottom);
        t.gci(b.clone(), b.clone());
        let Explanation::Unsat(core) = explain_unsat(&t, &a, BUDGET) else {
            panic!("A must be unsat");
        };
        assert!(core.minimal);
        assert_eq!(core.len(), 3, "chain core should be the three-link chain: {core:?}");
        for i in 0..core.len() {
            let mut weakened = core.axioms.clone();
            weakened.remove(i);
            assert_eq!(
                satisfiable(&t.restrict_to(&weakened), &a, BUDGET),
                DlOutcome::Sat,
                "dropping {} should break the refutation",
                core.axioms[i]
            );
        }
    }

    #[test]
    fn seeded_extraction_agrees_with_cold_path() {
        // Same Fig. 1 shape as `core_picks_the_guilty_axioms_only`.
        let mut t = TBox::new();
        let person = Concept::Atomic(t.atom("Person"));
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let phd = Concept::Atomic(t.atom("Phd"));
        let n1 = t.gci(student.clone(), person.clone());
        let n2 = t.gci(employee.clone(), person.clone());
        let g1 = t.gci(phd.clone(), student.clone());
        let g2 = t.gci(phd.clone(), employee.clone());
        let g3 = t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);

        // A good seed (another element's certified core, here the exact
        // cluster plus one stray axiom) reproduces the cold-path core.
        let good = explain_unsat_seeded(&t, &phd, BUDGET, &[g1, g2, g3, n1]);
        match good {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3]);
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // A non-refuting seed falls back to the cold path and still lands
        // on a certified minimal core.
        let bad = explain_unsat_seeded(&t, &phd, BUDGET, &[n1, n2]);
        match bad {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3]);
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // Seeding never flips a satisfiable verdict.
        assert_eq!(
            explain_unsat_seeded(&t, &student, BUDGET, &[g1, g2, g3]),
            Explanation::Satisfiable
        );
    }

    #[test]
    fn budget_exhaustion_reported_not_guessed() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        assert_eq!(explain_unsat(&t, &a, 1), Explanation::ResourceLimit);
    }

    /// Two independent contradictions on one type: both MUSes enumerated,
    /// complete, pairwise incomparable, each certified.
    #[test]
    fn enumeration_finds_both_independent_muses() {
        let mut t = TBox::new();
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let xtra = Concept::Atomic(t.atom("X"));
        let ytra = Concept::Atomic(t.atom("Y"));
        let phd = Concept::Atomic(t.atom("Phd"));
        let g1 = t.gci(phd.clone(), student.clone());
        let g2 = t.gci(phd.clone(), employee.clone());
        let g3 = t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);
        let g4 = t.gci(phd.clone(), xtra.clone());
        let g5 = t.gci(phd.clone(), ytra.clone());
        let g6 = t.gci(Concept::and([xtra.clone(), ytra.clone()]), Concept::Bottom);
        t.gci(student.clone(), Concept::Top); // noise
        let MusEnumeration::Unsat(family) = enumerate_mus(&t, &phd, BUDGET, usize::MAX) else {
            panic!("Phd is doomed");
        };
        assert!(family.complete && !family.truncated, "{family:?}");
        let mut sets: Vec<_> = family.cores.iter().map(|c| c.axioms.clone()).collect();
        sets.sort();
        assert_eq!(sets, vec![vec![g1, g2, g3], vec![g4, g5, g6]]);
        for core in &family.cores {
            assert!(core.minimal);
            assert!(core_refutes(&t, core, &phd, BUDGET));
        }
    }

    /// `limit = 1` reports the cap honestly: one core, truncated, not
    /// complete.
    #[test]
    fn enumeration_truncates_at_limit() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), Concept::Bottom);
        t.gci(a.clone(), b.clone());
        t.gci(b.clone(), Concept::Bottom);
        let MusEnumeration::Unsat(family) = enumerate_mus(&t, &a, BUDGET, 1) else {
            panic!("A is doomed");
        };
        assert_eq!(family.cores.len(), 1);
        assert!(family.truncated);
        assert!(!family.complete);
        // With room for both the truncation flag clears.
        let MusEnumeration::Unsat(full) = enumerate_mus(&t, &a, BUDGET, 2) else {
            panic!("A is doomed");
        };
        assert_eq!(full.cores.len(), 2);
        assert!(!full.truncated && full.complete);
    }

    /// A satisfiable query and a starved budget classify exactly like the
    /// single-core extractor.
    #[test]
    fn enumeration_classifies_like_explain() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        assert_eq!(enumerate_mus(&t, &a, BUDGET, usize::MAX), MusEnumeration::Satisfiable);
        let r = RoleExpr::direct(t.role("R"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        assert_eq!(enumerate_mus(&t, &a, 1, usize::MAX), MusEnumeration::ResourceLimit);
    }

    /// The self-contradictory query's family is the single empty core —
    /// and it has no repairs (no axiom removal can help).
    #[test]
    fn empty_core_family_has_no_repairs() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Top);
        let query = Concept::and([a.clone(), Concept::not(a.clone())]);
        let MusEnumeration::Unsat(family) = enumerate_mus(&t, &query, BUDGET, usize::MAX) else {
            panic!("self-contradiction");
        };
        assert_eq!(family.cores.len(), 1);
        assert!(family.cores[0].is_empty());
        assert!(family.complete);
        assert!(repair_sets(&family.cores).is_empty());
        assert!(ranked_repairs(&t, &query, BUDGET, &family).is_empty());
    }

    /// Hitting sets of a two-core family: singletons for the shared
    /// structure-free case, every repair hits both cores, and every
    /// returned repair is ⊆-minimal and verified Sat.
    #[test]
    fn repairs_hit_all_cores_and_reprove_sat() {
        let mut t = TBox::new();
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let xtra = Concept::Atomic(t.atom("X"));
        let ytra = Concept::Atomic(t.atom("Y"));
        let phd = Concept::Atomic(t.atom("Phd"));
        t.gci(phd.clone(), student.clone());
        t.gci(phd.clone(), employee.clone());
        t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);
        t.gci(phd.clone(), xtra.clone());
        t.gci(phd.clone(), ytra.clone());
        t.gci(Concept::and([xtra.clone(), ytra.clone()]), Concept::Bottom);
        let MusEnumeration::Unsat(family) = enumerate_mus(&t, &phd, BUDGET, usize::MAX) else {
            panic!("Phd is doomed");
        };
        assert_eq!(family.cores.len(), 2);
        let repairs = ranked_repairs(&t, &phd, BUDGET, &family);
        // 3 × 3 single-axiom picks, one from each independent core.
        assert_eq!(repairs.len(), 9);
        for repair in &repairs {
            assert!(repair.verified);
            assert_eq!(repair.len(), 2);
            for core in &family.cores {
                assert!(
                    core.axioms.iter().any(|a| repair.axioms.contains(a)),
                    "repair {repair:?} misses core {core:?}"
                );
            }
            let keep: Vec<AxiomId> = t.axiom_ids().filter(|a| !repair.axioms.contains(a)).collect();
            assert_eq!(satisfiable(&t.restrict_to(&keep), &phd, BUDGET), DlOutcome::Sat);
        }
        // Ranking is deterministic: a re-run reproduces the order.
        assert_eq!(repairs, ranked_repairs(&t, &phd, BUDGET, &family));
    }

    /// Recency ranking puts the repair touching the *latest* edit first.
    #[test]
    fn repairs_ranked_by_edit_recency() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let early = t.gci(a.clone(), b.clone());
        let late = t.gci(b.clone(), Concept::Bottom);
        assert!(t.axiom_recency(early) < t.axiom_recency(late));
        let MusEnumeration::Unsat(family) = enumerate_mus(&t, &a, BUDGET, usize::MAX) else {
            panic!("A is doomed");
        };
        assert_eq!(family.cores.len(), 1);
        let repairs = ranked_repairs(&t, &a, BUDGET, &family);
        assert_eq!(repairs.len(), 2);
        assert_eq!(repairs[0].axioms, vec![late], "latest edit should rank first");
        assert_eq!(repairs[1].axioms, vec![early]);
        assert!(repairs[0].recency > repairs[1].recency);
    }
}
