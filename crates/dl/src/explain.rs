//! Unsat-core extraction: *which axioms* make a query unsatisfiable.
//!
//! A bare `Unsat` verdict tells an ORM modeler that a type or role can
//! never be populated — but not which of the schema's constraints gang up
//! on it. This module turns a refutation into a **minimal unsat core**: a
//! set of TBox axioms that (a) still refutes the query on its own and
//! (b) stops refuting it when any single axiom is removed. Mapped back
//! through the `orm_to_dl` provenance table and verbalized, the core *is*
//! the diagnosis the paper's interactive scenario calls for.
//!
//! # Algorithm
//!
//! 1. **Seed** — run the tableau with axiom-usage tracking
//!    ([`crate::tableau::satisfiable_with_conflict`]). Every derived fact
//!    carries the set of axioms it transitively rests on, so the final
//!    conflict names a (conservative, possibly saturated) superset of one
//!    refutation's axioms — usually far smaller than the whole TBox.
//! 2. **Verify** — re-prove the query against the seed's restriction
//!    ([`crate::tbox::TBox::restrict_to`]). The usage sets are heuristic;
//!    only an actual `Unsat` run over the restricted TBox certifies the
//!    seed. An unconfirmed seed falls back to the full axiom set (which
//!    step 1 proved unsatisfiable).
//! 3. **Shrink** — deletion-based minimization: drop one axiom at a time
//!    and keep the deletion whenever the rest still refutes the query.
//!    Each "still refutes" probe again runs with tracking, and the probe's
//!    own (verified) conflict set can discard *several* axioms at once —
//!    the backjumping conflict sets double as a core-refinement
//!    accelerator. Satisfiability is anti-monotone in the axiom set
//!    (removing axioms only grows the model class), so an axiom whose
//!    removal once made the query satisfiable can never re-enter: the
//!    final set is minimal in one left-to-right pass.
//!
//! # Guarantees
//!
//! * Every returned core is itself unsatisfiable for the query — certified
//!   by an actual tableau run, never inferred from the usage sets.
//! * When [`UnsatCore::minimal`] is `true` (every probe reached a
//!   definitive verdict), removing any single axiom from the core flips
//!   the verdict to `Sat`. A probe that dies on the budget keeps its axiom
//!   conservatively and clears the flag: the core is still a certified
//!   unsat core, just possibly not minimal.
//! * The outcome classification always agrees with the plain
//!   [`crate::tableau::satisfiable`] verdict: `Unsat(_)` exactly when the
//!   plain run answers `Unsat`.
//!
//! The differential property tests in `tests/explain_dl.rs` pin all three
//! guarantees across random schemas.

use crate::concept::Concept;
use crate::tableau::{satisfiable, satisfiable_with_conflict, DlOutcome};
use crate::tbox::{AxiomId, TBox};

/// A certified unsat core: axioms whose restriction still refutes the
/// query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsatCore {
    /// The core's axioms, sorted by provenance id. May be empty: a query
    /// like `A ⊓ ¬A` is self-contradictory under the empty terminology.
    pub axioms: Vec<AxiomId>,
    /// Whether minimality is certified: `true` when every deletion probe
    /// reached a definitive verdict, so removing any single axiom is
    /// *known* to make the query satisfiable. `false` only when a probe
    /// ran out of budget and its axiom was kept conservatively.
    pub minimal: bool,
}

impl UnsatCore {
    /// Number of axioms in the core.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the core is empty (the query is self-contradictory).
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }
}

/// Outcome of an explanation request — the same three-way split as
/// [`DlOutcome`], with the `Unsat` arm carrying its core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Explanation {
    /// The query is unsatisfiable; here is a certified core.
    Unsat(UnsatCore),
    /// The query is satisfiable — nothing to explain.
    Satisfiable,
    /// The budget ran out before the *initial* verdict was certain.
    ResourceLimit,
}

impl Explanation {
    /// The plain verdict this explanation corresponds to (what
    /// [`crate::tableau::satisfiable`] would have answered).
    pub fn verdict(&self) -> DlOutcome {
        match self {
            Explanation::Unsat(_) => DlOutcome::Unsat,
            Explanation::Satisfiable => DlOutcome::Sat,
            Explanation::ResourceLimit => DlOutcome::ResourceLimit,
        }
    }

    /// The core, when unsatisfiable.
    pub fn core(&self) -> Option<&UnsatCore> {
        match self {
            Explanation::Unsat(core) => Some(core),
            _ => None,
        }
    }
}

/// Whether `candidate`'s restriction refutes `query`, reporting the
/// probe's own conflict seed for refinement.
fn probe(
    tbox: &TBox,
    candidate: &[AxiomId],
    query: &Concept,
    budget: u64,
) -> (DlOutcome, Option<Vec<AxiomId>>) {
    let sub = tbox.restrict_to(candidate);
    let (verdict, conflict) = satisfiable_with_conflict(&sub, query, budget);
    // The restricted TBox numbers its axioms 0..n in `candidate` order:
    // map the conflict back to the caller's provenance ids.
    let mapped = conflict.map(|ids| {
        let mut back: Vec<AxiomId> = ids
            .into_iter()
            .map(|id| {
                // Position of the restricted id in flat order == position
                // in `candidate` grouped by kind; recover it by counting.
                let flat = sub
                    .axiom_ids()
                    .position(|x| x == id)
                    .expect("conflict ids come from the restricted TBox");
                // `restrict_to` pushes axioms in `candidate` order, and
                // flat order groups by kind — rebuild the mapping.
                candidate_flat_to_original(candidate, flat)
            })
            .collect();
        back.sort_unstable();
        back.dedup();
        back
    });
    (verdict, mapped)
}

/// The original id at flat position `flat` of `restrict_to(candidate)`:
/// the restriction preserves each kind's relative order, and flat order
/// lists GCIs, then role inclusions, then disjointness.
fn candidate_flat_to_original(candidate: &[AxiomId], flat: usize) -> AxiomId {
    use crate::tbox::AxiomKind::{Disjointness, Gci, RoleInclusion};
    let mut in_order: Vec<&AxiomId> = Vec::with_capacity(candidate.len());
    for kind in [Gci, RoleInclusion, Disjointness] {
        in_order.extend(candidate.iter().filter(|a| a.kind == kind));
    }
    *in_order[flat]
}

/// Compute a minimal unsat core of `query` against `tbox` (see the
/// [module docs](self) for the algorithm and guarantees). Each internal
/// tableau probe runs under the same `budget` as the initial check.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::explain::{explain_unsat, Explanation};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// let ab = tbox.gci(a.clone(), b.clone());
/// let doom = tbox.gci(Concept::and([a.clone(), b.clone()]), Concept::Bottom);
/// tbox.gci(b.clone(), Concept::Top); // irrelevant noise
///
/// match explain_unsat(&tbox, &a, 100_000) {
///     Explanation::Unsat(core) => {
///         assert_eq!(core.axioms, vec![ab, doom]);
///         assert!(core.minimal);
///     }
///     other => panic!("expected a core, got {other:?}"),
/// }
/// assert_eq!(explain_unsat(&tbox, &b, 100_000), Explanation::Satisfiable);
/// ```
pub fn explain_unsat(tbox: &TBox, query: &Concept, budget: u64) -> Explanation {
    // The minimization probes run the tableau against *weakened* TBoxes,
    // whose searches can legitimately open thousands of decision levels
    // within the budget (the axioms that used to close branches early are
    // exactly what got deleted). `Engine::search` recurses once per open
    // level, so the whole extraction runs on a scoped worker thread with
    // a stack sized for the worst case rather than for the caller's.
    with_deep_stack(|| explain_unsat_inner(tbox, query, budget))
}

/// Run `f` on a scoped worker thread whose stack fits a worst-case
/// tableau search (the engine recurses one `search` frame per open
/// decision level, and weakened-TBox probes can open thousands within an
/// ample budget). [`explain_unsat`] wraps its own work in this; callers
/// that drive `satisfiable` directly against [`TBox::restrict_to`]
/// outputs — verification harnesses, benches, property tests — should
/// do the same rather than size their own threads.
pub fn with_deep_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    const DEEP_STACK: usize = 64 * 1024 * 1024;
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("orm-dl-deep-stack".into())
            .stack_size(DEEP_STACK)
            .spawn_scoped(scope, f)
            .expect("spawn deep-stack worker")
            .join()
            .expect("deep-stack worker panicked")
    })
}

fn explain_unsat_inner(tbox: &TBox, query: &Concept, budget: u64) -> Explanation {
    let (verdict, conflict) = satisfiable_with_conflict(tbox, query, budget);
    match verdict {
        DlOutcome::Sat => return Explanation::Satisfiable,
        DlOutcome::ResourceLimit => return Explanation::ResourceLimit,
        DlOutcome::Unsat => {}
    }
    let all: Vec<AxiomId> = tbox.axiom_ids().collect();
    // Step 2: verify the seed; fall back to the full set when the
    // restriction fails to refute (the usage sets are heuristic). The
    // verifying probe's own, smaller conflict is adopted only after a
    // verification probe of its own — like every refinement in step 3,
    // it is a heuristic mask until an actual run certifies it.
    let seed = conflict.expect("unsat carries a conflict");
    let core = if seed.len() < all.len() {
        match probe(tbox, &seed, query, budget) {
            (DlOutcome::Unsat, refined) => match refined {
                Some(r) if r.len() < seed.len() => match probe(tbox, &r, query, budget) {
                    (DlOutcome::Unsat, _) => r,
                    _ => seed,
                },
                _ => seed,
            },
            _ => all.clone(),
        }
    } else {
        all.clone()
    };
    Explanation::Unsat(minimize(tbox, query, budget, core))
}

/// Compute an unsat core of `query` starting from a **warm seed**: axiom
/// ids whose restriction is suspected (not required) to refute the query —
/// typically a certified core extracted for a *different* element of the
/// same schema, whose doom usually rests on the same axiom cluster.
///
/// The seed is probed first. If its restriction certifiably refutes the
/// query, minimization starts from the seed and the full-TBox tableau run
/// that dominates [`explain_unsat`]'s cold path is **skipped entirely** —
/// sound because satisfiability is anti-monotone in the axiom set: a
/// refuting restriction means the full TBox refutes too. A seed that fails
/// to refute (or exhausts its probe budget) costs one probe and falls back
/// to the cold path. Unknown axiom ids in the seed are ignored.
pub fn explain_unsat_seeded(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
    seed: &[AxiomId],
) -> Explanation {
    with_deep_stack(|| explain_unsat_seeded_inner(tbox, query, budget, seed))
}

fn explain_unsat_seeded_inner(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
    seed: &[AxiomId],
) -> Explanation {
    let known: Vec<AxiomId> = {
        let present: std::collections::HashSet<AxiomId> = tbox.axiom_ids().collect();
        let mut k: Vec<AxiomId> = seed.iter().copied().filter(|a| present.contains(a)).collect();
        k.sort_unstable();
        k.dedup();
        k
    };
    // Seeding with every axiom proves nothing the cold path would not.
    if known.is_empty() || known.len() >= tbox.axiom_count() {
        return explain_unsat_inner(tbox, query, budget);
    }
    match probe(tbox, &known, query, budget) {
        (DlOutcome::Unsat, refined) => {
            let core = match refined {
                Some(r) if r.len() < known.len() => match probe(tbox, &r, query, budget) {
                    (DlOutcome::Unsat, _) => r,
                    _ => known,
                },
                _ => known,
            };
            Explanation::Unsat(minimize(tbox, query, budget, core))
        }
        _ => explain_unsat_inner(tbox, query, budget),
    }
}

/// Deletion-minimize a **certified** core (its restriction is already
/// known to refute `query`) — step 3 of the [module docs](self), shared
/// by the cold and the seeded extraction paths.
fn minimize(tbox: &TBox, query: &Concept, budget: u64, mut core: Vec<AxiomId>) -> UnsatCore {
    core.sort_unstable();
    core.dedup();
    // Deletion minimization with conflict refinement. Invariant:
    // `core`'s restriction is certified Unsat; every axiom before `i` is
    // needed (its sole removal was probed Sat against a superset of the
    // final core — anti-monotonicity transfers that to the final core).
    let mut minimal = true;
    let mut i = 0;
    while i < core.len() {
        let mut candidate = core.clone();
        let removed = candidate.remove(i);
        match probe(tbox, &candidate, query, budget) {
            (DlOutcome::Unsat, refined) => {
                // Drop `removed` for good; adopt the probe's smaller
                // conflict when it verifies (one extra probe), else the
                // candidate itself. `i` stays: a new axiom now sits here.
                core = match refined {
                    Some(seed) if seed.len() < candidate.len() => {
                        match probe(tbox, &seed, query, budget) {
                            (DlOutcome::Unsat, _) => {
                                // The jump may strip already-vetted
                                // axioms; restart the scan over the
                                // smaller set (still terminates: the set
                                // shrank strictly).
                                i = 0;
                                seed
                            }
                            _ => candidate,
                        }
                    }
                    _ => candidate,
                };
            }
            (DlOutcome::Sat, _) => i += 1,
            (DlOutcome::ResourceLimit, _) => {
                // Could not decide: keep the axiom, lose the minimality
                // certificate.
                let _ = removed;
                minimal = false;
                i += 1;
            }
        }
    }
    UnsatCore { axioms: core, minimal }
}

/// Convenience: whether `core` (alone) certifiably refutes `query` — the
/// check the property tests and the bench harness run against every
/// extracted core.
pub fn core_refutes(tbox: &TBox, core: &UnsatCore, query: &Concept, budget: u64) -> bool {
    satisfiable(&tbox.restrict_to(&core.axioms), query, budget) == DlOutcome::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::RoleExpr;

    const BUDGET: u64 = 200_000;

    #[test]
    fn empty_core_for_self_contradiction() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Top);
        let query = Concept::and([a.clone(), Concept::not(a.clone())]);
        match explain_unsat(&t, &query, BUDGET) {
            Explanation::Unsat(core) => {
                assert!(core.is_empty(), "self-contradiction needs no axioms: {core:?}");
                assert!(core.minimal);
                assert!(core_refutes(&t, &core, &query, BUDGET));
            }
            other => panic!("expected a core, got {other:?}"),
        }
    }

    #[test]
    fn core_picks_the_guilty_axioms_only() {
        // Fig. 1 shape: Phd ⊑ Student, Phd ⊑ Employee,
        // Student ⊓ Employee ⊑ ⊥ — plus unrelated noise.
        let mut t = TBox::new();
        let person = Concept::Atomic(t.atom("Person"));
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let phd = Concept::Atomic(t.atom("Phd"));
        let _n1 = t.gci(student.clone(), person.clone());
        let _n2 = t.gci(employee.clone(), person.clone());
        let g1 = t.gci(phd.clone(), student.clone());
        let g2 = t.gci(phd.clone(), employee.clone());
        let g3 = t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);
        match explain_unsat(&t, &phd, BUDGET) {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3], "core picked wrong axioms");
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // The other types explain as satisfiable.
        for ty in [person, student, employee] {
            assert_eq!(explain_unsat(&t, &ty, BUDGET), Explanation::Satisfiable);
        }
    }

    #[test]
    fn role_axioms_appear_in_cores() {
        // ∃F.⊤ doomed through a role inclusion into a self-disjoint role.
        let mut t = TBox::new();
        let f = RoleExpr::direct(t.role("F"));
        let g = RoleExpr::direct(t.role("G"));
        let noise = Concept::Atomic(t.atom("Noise"));
        t.gci(noise.clone(), Concept::Top);
        let ri = t.role_inclusion(f, g);
        let dj = t.disjoint(g, g);
        let query = Concept::some(f);
        match explain_unsat(&t, &query, BUDGET) {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![ri, dj]);
                assert!(core.minimal);
                assert!(core_refutes(&t, &core, &query, BUDGET));
            }
            other => panic!("expected a core, got {other:?}"),
        }
    }

    #[test]
    fn minimality_holds_on_each_axiom() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let c = Concept::Atomic(t.atom("C"));
        t.gci(a.clone(), b.clone());
        t.gci(b.clone(), c.clone());
        t.gci(c.clone(), Concept::Bottom);
        t.gci(b.clone(), b.clone());
        let Explanation::Unsat(core) = explain_unsat(&t, &a, BUDGET) else {
            panic!("A must be unsat");
        };
        assert!(core.minimal);
        assert_eq!(core.len(), 3, "chain core should be the three-link chain: {core:?}");
        for i in 0..core.len() {
            let mut weakened = core.axioms.clone();
            weakened.remove(i);
            assert_eq!(
                satisfiable(&t.restrict_to(&weakened), &a, BUDGET),
                DlOutcome::Sat,
                "dropping {} should break the refutation",
                core.axioms[i]
            );
        }
    }

    #[test]
    fn seeded_extraction_agrees_with_cold_path() {
        // Same Fig. 1 shape as `core_picks_the_guilty_axioms_only`.
        let mut t = TBox::new();
        let person = Concept::Atomic(t.atom("Person"));
        let student = Concept::Atomic(t.atom("Student"));
        let employee = Concept::Atomic(t.atom("Employee"));
        let phd = Concept::Atomic(t.atom("Phd"));
        let n1 = t.gci(student.clone(), person.clone());
        let n2 = t.gci(employee.clone(), person.clone());
        let g1 = t.gci(phd.clone(), student.clone());
        let g2 = t.gci(phd.clone(), employee.clone());
        let g3 = t.gci(Concept::and([student.clone(), employee.clone()]), Concept::Bottom);

        // A good seed (another element's certified core, here the exact
        // cluster plus one stray axiom) reproduces the cold-path core.
        let good = explain_unsat_seeded(&t, &phd, BUDGET, &[g1, g2, g3, n1]);
        match good {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3]);
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // A non-refuting seed falls back to the cold path and still lands
        // on a certified minimal core.
        let bad = explain_unsat_seeded(&t, &phd, BUDGET, &[n1, n2]);
        match bad {
            Explanation::Unsat(core) => {
                assert_eq!(core.axioms, vec![g1, g2, g3]);
                assert!(core.minimal);
            }
            other => panic!("expected a core, got {other:?}"),
        }
        // Seeding never flips a satisfiable verdict.
        assert_eq!(
            explain_unsat_seeded(&t, &student, BUDGET, &[g1, g2, g3]),
            Explanation::Satisfiable
        );
    }

    #[test]
    fn budget_exhaustion_reported_not_guessed() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        assert_eq!(explain_unsat(&t, &a, 1), Explanation::ResourceLimit);
    }
}
