//! Halpin's seven formation rules \[H89\] as lints (paper §3).
//!
//! The paper's related-work analysis classifies each rule by whether its
//! violation implies an unsatisfiable role (*relevant*) or merely poor
//! style/redundancy. The classification here mirrors §3 exactly:
//!
//! | rule | statement | relevance |
//! |------|-----------|-----------|
//! | 1 | never use `FC(1-1)` — use uniqueness | style |
//! | 2 | no FC spanning a whole predicate | style (`min>1` case → Pattern 7) |
//! | 3 | no FC on a sequence exactly spanned by a UC | style (`min>1` → Pattern 7) |
//! | 4 | no UC spanned by a longer UC | redundancy |
//! | 5 | no exclusion on roles one of which is mandatory | **= Pattern 3** |
//! | 6 | no exclusion between roles of subtype-related players | style (Fig. 14 is satisfiable) |
//! | 7 | FC lower bound vs other-role maximum cardinalities | covered by Pattern 4 |

use crate::diagnostics::{CheckCode, Finding, Severity};
use crate::patterns::{effective_value_cardinality, Check, Trigger};
use orm_model::{Constraint, ConstraintKind, Element, Schema, SchemaIndex, SetComparisonKind};
use std::collections::BTreeSet;

/// Formation rule 1: `FC(1-1)` should be a uniqueness constraint.
pub struct Fr1;

impl Check for Fr1 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr1
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Frequency)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            if fc.min == 1 && fc.max == Some(1) {
                out.push(Finding {
                    code: CheckCode::Fr1,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "FC(1-1) on {} should be expressed as a uniqueness constraint",
                        schema.seq_label(&orm_model::RoleSeq(fc.roles.clone()))
                    ),
                });
            }
        }
    }
}

/// Formation rule 2: a frequency constraint must not span a whole predicate.
pub struct Fr2;

impl Check for Fr2 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr2
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Frequency)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            if fc.roles.len() == 2 {
                out.push(Finding {
                    code: CheckCode::Fr2,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "{} spans a whole predicate; predicates are sets, so the \
                         constraint is {}",
                        fc.notation(),
                        if fc.min > 1 { "unsatisfiable (see Pattern 7)" } else { "redundant" }
                    ),
                });
            }
        }
    }
}

/// Formation rule 3: no frequency constraint on a sequence exactly spanned
/// by a uniqueness constraint.
pub struct Fr3;

impl Check for Fr3 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr3
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::Frequency),
            Trigger::Constraint(ConstraintKind::Uniqueness),
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            for uc in idx.uniqueness_on(&fc.roles) {
                out.push(Finding {
                    code: CheckCode::Fr3,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid), Element::Constraint(uc)],
                    message: format!(
                        "{} coexists with a uniqueness constraint on the same role \
                         sequence; {}",
                        fc.notation(),
                        if fc.min > 1 {
                            "the combination is unsatisfiable (see Pattern 7)"
                        } else {
                            "prefer uniqueness (plus mandatory) alone"
                        }
                    ),
                });
            }
        }
    }
}

/// Formation rule 4: no uniqueness constraint spanned by a longer one — the
/// longer constraint is implied.
pub struct Fr4;

impl Check for Fr4 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr4
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Uniqueness)]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (long_id, long) in &idx.uniqueness {
            let long_set: BTreeSet<_> = long.roles.iter().copied().collect();
            for (short_id, short) in &idx.uniqueness {
                if short_id == long_id {
                    continue;
                }
                let short_set: BTreeSet<_> = short.roles.iter().copied().collect();
                if short_set.is_subset(&long_set) && short_set.len() < long_set.len() {
                    out.push(Finding {
                        code: CheckCode::Fr4,
                        severity: Severity::Redundancy,
                        unsat_roles: vec![],
                        joint_unsat_roles: Vec::new(),
                        unsat_types: vec![],
                        culprits: vec![
                            Element::Constraint(*long_id),
                            Element::Constraint(*short_id),
                        ],
                        message: format!(
                            "the uniqueness constraint on {} is implied by the shorter \
                             uniqueness constraint on {}",
                            schema.seq_label(&orm_model::RoleSeq(long.roles.clone())),
                            schema.seq_label(&orm_model::RoleSeq(short.roles.clone()))
                        ),
                    });
                }
            }
        }
    }
}

/// Formation rule 5: no exclusion constraint over roles one of which is
/// mandatory. This is the syntactic form of Pattern 3 (§3: "rule 5 is
/// exactly pattern 3"), flagged as unsat-relevant.
pub struct Fr5;

impl Check for Fr5 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr5
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::SetComparison),
            Trigger::Constraint(ConstraintKind::Mandatory),
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion || !sc.over_single_roles() {
                continue;
            }
            for seq in &sc.args {
                let role = seq.roles()[0];
                if let Some(mand) = idx.mandatory_on(role) {
                    out.push(Finding {
                        code: CheckCode::Fr5,
                        severity: Severity::Guideline,
                        unsat_roles: vec![],
                        joint_unsat_roles: Vec::new(),
                        unsat_types: vec![],
                        culprits: vec![Element::Constraint(cid), Element::Constraint(mand)],
                        message: format!(
                            "the exclusion constraint covers the mandatory role `{}`; \
                             when the players are related this is Pattern 3's \
                             unsatisfiability",
                            schema.role_label(role)
                        ),
                    });
                }
            }
        }
    }
}

/// Formation rule 6: no exclusion between roles whose players are
/// subtype-related. Not unsat-relevant — Fig. 14 violates it while all
/// roles stay satisfiable.
pub struct Fr6;

impl Check for Fr6 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr6
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison), Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion || !sc.over_single_roles() {
                continue;
            }
            let roles: Vec<_> = sc.args.iter().map(|s| s.roles()[0]).collect();
            for (i, &ri) in roles.iter().enumerate() {
                for &rj in roles.iter().skip(i + 1) {
                    let (pi, pj) = (schema.player(ri), schema.player(rj));
                    if pi != pj
                        && (idx.is_subtype_of_or_eq(pi, pj) || idx.is_subtype_of_or_eq(pj, pi))
                    {
                        out.push(Finding {
                            code: CheckCode::Fr6,
                            severity: Severity::Guideline,
                            unsat_roles: vec![],
                            joint_unsat_roles: Vec::new(),
                            unsat_types: vec![],
                            culprits: vec![Element::Constraint(cid)],
                            message: format!(
                                "the exclusion constraint spans roles `{}` and `{}` whose \
                                 players are subtype-related ({} / {}); legal but \
                                 easily misread",
                                schema.role_label(ri),
                                schema.role_label(rj),
                                schema.object_type(pi).name(),
                                schema.object_type(pj).name()
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Formation rule 7: a frequency constraint's lower bound must not exceed
/// what the other role's population can supply. With binary predicates and
/// maximum cardinalities read from value constraints (paper footnote 5),
/// this coincides with Pattern 4; the lint fires alongside it for §3's
/// bookkeeping.
pub struct Fr7;

impl Check for Fr7 {
    fn code(&self) -> CheckCode {
        CheckCode::Fr7
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Frequency), Trigger::Values]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            let [role] = fc.roles[..] else { continue };
            let co_player = schema.player(schema.co_role(role));
            let Some((card, _)) = effective_value_cardinality(schema, idx, co_player) else {
                continue;
            };
            if card < u64::from(fc.min) {
                out.push(Finding {
                    code: CheckCode::Fr7,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "{} demands more occurrences than the other role's maximum \
                         cardinality {} allows (covered by Pattern 4)",
                        fc.notation(),
                        card
                    ),
                });
            }
        }
    }
}

/// All seven formation-rule lints in order.
pub fn formation_rules() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(Fr1),
        Box::new(Fr2),
        Box::new(Fr3),
        Box::new(Fr4),
        Box::new(Fr5),
        Box::new(Fr6),
        Box::new(Fr7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RoleId, SchemaBuilder, ValueConstraint};

    fn run_rule(check: &dyn Check, schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        check.run(schema, &schema.index(), &mut out);
        out
    }

    fn one_fact() -> (SchemaBuilder, [RoleId; 2]) {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type_full("f", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let roles = b.schema().fact_type(f).roles();
        (b, roles)
    }

    #[test]
    fn fr1_flags_fc_1_1() {
        let (mut b, [r1, _]) = one_fact();
        b.frequency([r1], 1, Some(1)).unwrap();
        let s = b.finish();
        let f = run_rule(&Fr1, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Guideline);
        // FC(1-2) is fine.
        let (mut b, [r1, _]) = one_fact();
        b.frequency([r1], 1, Some(2)).unwrap();
        assert!(run_rule(&Fr1, &b.finish()).is_empty());
    }

    #[test]
    fn fr2_flags_spanning_fc() {
        let (mut b, [r1, r2]) = one_fact();
        b.frequency([r1, r2], 1, Some(3)).unwrap();
        let s = b.finish();
        let f = run_rule(&Fr2, &s);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("redundant"));
        // min > 1 notes the Pattern 7 connection.
        let (mut b, [r1, r2]) = one_fact();
        b.frequency([r1, r2], 2, None).unwrap();
        let f = run_rule(&Fr2, &b.finish());
        assert!(f[0].message.contains("unsatisfiable"));
    }

    #[test]
    fn fr3_flags_fc_on_uc_sequence() {
        let (mut b, [r1, _]) = one_fact();
        b.unique([r1]).unwrap();
        b.frequency([r1], 1, Some(5)).unwrap();
        let s = b.finish();
        assert_eq!(run_rule(&Fr3, &s).len(), 1);
        // UC on the other role: no overlap.
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r2]).unwrap();
        b.frequency([r1], 1, Some(5)).unwrap();
        assert!(run_rule(&Fr3, &b.finish()).is_empty());
    }

    #[test]
    fn fr4_flags_spanned_uc() {
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r1]).unwrap();
        b.unique([r1, r2]).unwrap();
        let s = b.finish();
        let f = run_rule(&Fr4, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Redundancy);
        // Two disjoint single-role UCs are fine.
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r1]).unwrap();
        b.unique([r2]).unwrap();
        assert!(run_rule(&Fr4, &b.finish()).is_empty());
    }

    #[test]
    fn fr5_flags_mandatory_in_exclusion() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert_eq!(run_rule(&Fr5, &s).len(), 1);
    }

    #[test]
    fn fr6_flags_subtype_related_players() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(c, a).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", c, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r3 = b.schema().fact_type(f1).first();
        let r5 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r3, r5]).unwrap();
        let s = b.finish();
        let f = run_rule(&Fr6, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Guideline);
        assert!(f[0].unsat_roles.is_empty(), "rule 6 must not claim unsatisfiability");
    }

    #[test]
    fn fr6_silent_on_same_player() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        assert!(run_rule(&Fr6, &b.finish()).is_empty());
    }

    #[test]
    fn fr7_flags_excessive_min() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.value_type("X", Some(ValueConstraint::enumeration(["v"]))).unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 2, None).unwrap();
        let s = b.finish();
        assert_eq!(run_rule(&Fr7, &s).len(), 1);
    }

    #[test]
    fn all_rules_enumerated() {
        let rules = formation_rules();
        assert_eq!(rules.len(), 7);
        let codes: Vec<CheckCode> = rules.iter().map(|r| r.code()).collect();
        assert_eq!(codes, CheckCode::FORMATION_RULES.to_vec());
    }
}
