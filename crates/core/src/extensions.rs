//! Extension checks from the paper's conclusion (§5).
//!
//! The paper closes by noting the nine patterns are not complete and
//! sketches the kind of additions it has in mind — "e.g., one could demand
//! that for irreflexive roles at least 2 different values need to be
//! present". This module implements:
//!
//! * **E1** — a value constraint admitting zero values makes its type (and
//!   every role the type plays) unpopulatable;
//! * **E2** — the paper's own example: a ring constraint implying
//!   irreflexivity needs at least two distinct player values;
//! * **E3** — *unsatisfiability propagation* ([`propagate`]): closing the
//!   set of doomed roles/types under the structural consequences of
//!   emptiness, so one root cause surfaces all its downstream victims;
//! * **E4** — a subset or equality constraint whose argument roles are
//!   played by types that can never share instances (no common supertype —
//!   ORM's implicit type exclusion): the ⊆-smaller population is forced
//!   empty. This contradiction class slips through all nine patterns; this
//!   reproduction's cross-validation against the complete reasoners
//!   surfaced it (see EXPERIMENTS.md).

use crate::diagnostics::{CheckCode, Finding, Severity};
use crate::patterns::{effective_value_cardinality, Check, Trigger};
use crate::ring::euler::implied_closure;
use crate::setpath::{Node, SetPathGraph};
use orm_model::{
    Constraint, ConstraintKind, Element, ObjectTypeId, RingKind, RoleId, Schema, SchemaIndex,
};
use std::collections::BTreeSet;

/// E1: a type whose (effective) value constraint admits no values.
pub struct E1;

impl Check for E1 {
    fn code(&self) -> CheckCode {
        CheckCode::E1
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Values, Trigger::Subtyping, Trigger::Structure]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (ty, ot) in schema.object_types() {
            // The effective value set is the intersection of all value
            // constraints along the supertype chain; empty ⇒ unpopulatable.
            let Some((card, _)) = effective_value_cardinality(schema, idx, ty) else {
                continue;
            };
            if card > 0 {
                continue;
            }
            // Fire at the most general type where emptiness first appears;
            // subtypes below it are E3's (propagation's) business.
            let inherited = idx
                .direct_supers(ty)
                .iter()
                .any(|sup| matches!(effective_value_cardinality(schema, idx, *sup), Some((0, _))));
            if inherited {
                continue;
            }
            let culprits: Vec<Element> = idx
                .supers_refl(ty)
                .into_iter()
                .filter(|t| schema.object_type(*t).value_constraint().is_some())
                .map(Element::ObjectType)
                .collect();
            out.push(Finding {
                code: CheckCode::E1,
                severity: Severity::Unsatisfiable,
                unsat_roles: idx.roles_of_type[ty.index()].clone(),
                joint_unsat_roles: Vec::new(),
                unsat_types: vec![ty],
                culprits,
                message: format!(
                    "the value constraints applying to `{}` admit no common value, so \
                     the type can never be populated",
                    ot.name()
                ),
            });
        }
    }
}

/// E2: ring kinds implying irreflexivity need at least two distinct values
/// of the (common) player: a single-value player admits only the self-loop,
/// which irreflexivity forbids.
pub struct E2;

impl Check for E2 {
    fn code(&self) -> CheckCode {
        CheckCode::E2
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Ring), Trigger::Values, Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (fact, kinds, cids) in idx.ring_kinds_by_fact(schema) {
            if !implied_closure(kinds).contains(RingKind::Irreflexive) {
                continue;
            }
            let ft = schema.fact_type(fact);
            // Both columns draw from every common supertype's population;
            // the tightest bound over either player's chain applies to the
            // pairs only via the *common* ancestors, so bound both players
            // and take what they share. For identical players this is just
            // the player's own effective bound.
            let p0 = schema.player(ft.first());
            let p1 = schema.player(ft.second());
            let common: BTreeSet<ObjectTypeId> =
                idx.supers_refl(p0).intersection(&idx.supers_refl(p1)).copied().collect();
            let mut bound: Option<(u64, ObjectTypeId)> = None;
            for t in common {
                if let Some((card, holder)) = effective_value_cardinality(schema, idx, t) {
                    bound = Some(match bound {
                        Some((b, _)) if b <= card => bound.unwrap(),
                        _ => (card, holder),
                    });
                }
            }
            let Some((card, holder)) = bound else { continue };
            if card >= 2 {
                continue;
            }
            let mut culprits: Vec<Element> = cids.iter().map(|c| Element::Constraint(*c)).collect();
            culprits.push(Element::ObjectType(holder));
            out.push(Finding {
                code: CheckCode::E2,
                severity: Severity::Unsatisfiable,
                unsat_roles: vec![ft.first(), ft.second()],
                joint_unsat_roles: Vec::new(),
                unsat_types: vec![],
                culprits,
                message: format!(
                    "the ring constraints {kinds} on `{}` imply irreflexivity, which \
                     needs at least 2 distinct values, but `{}` admits only {}",
                    ft.name(),
                    schema.object_type(holder).name(),
                    card
                ),
            });
        }
    }
}

/// E4: subset/equality constraints whose corresponding argument roles have
/// players that can never overlap (implicit type exclusion): the sub side
/// (both sides, for equality) can never be populated.
pub struct E4;

impl Check for E4 {
    fn code(&self) -> CheckCode {
        CheckCode::E4
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison), Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        use orm_model::SetComparisonKind;
        for (cid, c) in schema.constraints() {
            let orm_model::Constraint::SetComparison(sc) = c else { continue };
            let (pairs, both_sides_die): (Vec<(usize, usize)>, bool) = match sc.kind {
                SetComparisonKind::Subset => (vec![(0, 1)], false),
                SetComparisonKind::Equality => ((1..sc.args.len()).map(|j| (0, j)).collect(), true),
                SetComparisonKind::Exclusion => continue,
            };
            for (i, j) in pairs {
                let a = &sc.args[i];
                let b = &sc.args[j];
                let incompatible_at = a
                    .roles()
                    .iter()
                    .copied()
                    .zip(b.roles().iter().copied())
                    .find(|(ra, rb)| !idx.may_overlap(schema.player(*ra), schema.player(*rb)));
                let Some((ra, rb)) = incompatible_at else { continue };
                let mut dead: BTreeSet<RoleId> = BTreeSet::new();
                for r in a.roles() {
                    let ft = schema.fact_type(schema.role(*r).fact_type());
                    dead.insert(ft.first());
                    dead.insert(ft.second());
                }
                if both_sides_die {
                    for r in b.roles() {
                        let ft = schema.fact_type(schema.role(*r).fact_type());
                        dead.insert(ft.first());
                        dead.insert(ft.second());
                    }
                }
                let names: Vec<&str> = dead.iter().map(|r| schema.role_label(*r)).collect();
                out.push(Finding {
                    code: CheckCode::E4,
                    severity: Severity::Unsatisfiable,
                    unsat_roles: dead.into_iter().collect(),
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "the {} constraint relates role `{}` (played by `{}`) to role \
                         `{}` (played by `{}`), but those players can never share \
                         instances; the role(s) {} cannot be populated",
                        sc.kind,
                        schema.role_label(ra),
                        schema.object_type(schema.player(ra)).name(),
                        schema.role_label(rb),
                        schema.object_type(schema.player(rb)).name(),
                        names.join(", ")
                    ),
                });
            }
        }
    }
}

/// E5: a simple mandatory constraint on a role of an **acyclic** ring fact
/// type, where the co-role's player is the same type as (or a subtype of)
/// the mandatory player.
///
/// ORM populations are finite. The mandatory constraint gives every
/// instance of the player an edge in the ring relation; because the edge's
/// other endpoint belongs to the same population, it too needs an edge, and
/// a finite set in which every element has an outgoing edge contains a
/// cycle — which acyclicity forbids. The player (and the fact's roles) can
/// never be populated. This is an *infinity axiom* collapsing under finite
/// semantics; cross-validation against the bounded model finder surfaced
/// it (see EXPERIMENTS.md).
pub struct E5;

impl Check for E5 {
    fn code(&self) -> CheckCode {
        CheckCode::E5
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::Ring),
            Trigger::Constraint(ConstraintKind::Mandatory),
            Trigger::Subtyping,
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (fact, kinds, cids) in idx.ring_kinds_by_fact(schema) {
            if !kinds.contains(RingKind::Acyclic) {
                continue;
            }
            let ft = schema.fact_type(fact);
            for role in ft.roles() {
                let Some(mand) = idx.mandatory_on(role) else { continue };
                let player = schema.player(role);
                let co_player = schema.player(schema.co_role(role));
                // The chain only stays trapped inside the mandatory
                // population when the partners come from it too.
                if !idx.is_subtype_of_or_eq(co_player, player) {
                    continue;
                }
                let mut culprits: Vec<Element> =
                    cids.iter().map(|c| Element::Constraint(*c)).collect();
                culprits.push(Element::Constraint(mand));
                out.push(Finding {
                    code: CheckCode::E5,
                    severity: Severity::Unsatisfiable,
                    unsat_roles: vec![ft.first(), ft.second()],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![player],
                    culprits,
                    message: format!(
                        "every `{}` must play `{}` of the acyclic fact type `{}`, but \
                         in a finite population that forces a cycle; the type can \
                         never be populated",
                        schema.object_type(player).name(),
                        schema.role_label(role),
                        ft.name()
                    ),
                });
            }
        }
    }
}

/// E3: close the unsatisfiable roles/types reported by earlier findings
/// under structural consequences:
///
/// * a subtype of an empty type is empty;
/// * a role played by an empty type is empty;
/// * the co-role of an empty role is empty (a binary fact table with one
///   empty column is empty);
/// * a type whose simple-mandatory role is empty is empty; likewise when
///   *all* roles of a disjunctive mandatory constraint are empty;
/// * a role with a subset/equality path **into** an empty role is empty;
/// * a supertype totally covered by empty subtypes is empty.
///
/// Run by the validator after all other enabled checks; the returned
/// findings carry code [`CheckCode::E3`].
pub fn propagate(schema: &Schema, idx: &SchemaIndex, seed: &[Finding]) -> Vec<Finding> {
    let mut dead_roles: BTreeSet<RoleId> = BTreeSet::new();
    let mut dead_types: BTreeSet<ObjectTypeId> = BTreeSet::new();
    for f in seed {
        if f.severity == Severity::Unsatisfiable {
            dead_roles.extend(f.unsat_roles.iter().copied());
            dead_types.extend(f.unsat_types.iter().copied());
        }
    }
    if dead_roles.is_empty() && dead_types.is_empty() {
        return Vec::new();
    }
    let seed_roles = dead_roles.clone();
    let seed_types = dead_types.clone();

    let graph = SetPathGraph::build(schema, None);
    // Reverse set-path edges are needed ("X ⊆ dead ⇒ X dead"); query
    // per-candidate with the forward graph instead of materializing a
    // reverse graph — schemas are small relative to the fixpoint loop.
    let all_roles: Vec<RoleId> = schema.roles().map(|(id, _)| id).collect();

    loop {
        let mut changed = false;

        // Subtypes and played roles of dead types.
        for &t in dead_types.clone().iter() {
            for sub in idx.subs(t) {
                changed |= dead_types.insert(*sub);
            }
            for r in &idx.roles_of_type[t.index()] {
                changed |= dead_roles.insert(*r);
            }
        }

        // Co-roles of dead roles.
        for &r in dead_roles.clone().iter() {
            changed |= dead_roles.insert(schema.co_role(r));
        }

        // Mandatory constraints with all roles dead doom the player.
        for (_, c) in schema.constraints() {
            if let Constraint::Mandatory(m) = c {
                if m.roles.iter().all(|r| dead_roles.contains(r)) {
                    changed |= dead_types.insert(schema.player(m.roles[0]));
                }
            }
            if let Constraint::TotalSubtypes(t) = c {
                if t.subtypes.iter().all(|s| dead_types.contains(s)) {
                    changed |= dead_types.insert(t.supertype);
                }
            }
        }

        // Roles with a set-path into a dead role.
        for &candidate in &all_roles {
            if dead_roles.contains(&candidate) {
                continue;
            }
            let reaches_dead = dead_roles
                .iter()
                .any(|dead| graph.path(&Node::Role(candidate), &Node::Role(*dead)).is_some());
            if reaches_dead {
                dead_roles.insert(candidate);
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    let new_roles: Vec<RoleId> = dead_roles.difference(&seed_roles).copied().collect();
    let new_types: Vec<ObjectTypeId> = dead_types.difference(&seed_types).copied().collect();
    if new_roles.is_empty() && new_types.is_empty() {
        return Vec::new();
    }
    let role_names: Vec<&str> = new_roles.iter().map(|r| schema.role_label(*r)).collect();
    let type_names: Vec<&str> = new_types.iter().map(|t| schema.object_type(*t).name()).collect();
    let mut parts = Vec::new();
    if !role_names.is_empty() {
        parts.push(format!("role(s) {}", role_names.join(", ")));
    }
    if !type_names.is_empty() {
        parts.push(format!("type(s) {}", type_names.join(", ")));
    }
    vec![Finding {
        code: CheckCode::E3,
        severity: Severity::Unsatisfiable,
        unsat_roles: new_roles,
        joint_unsat_roles: Vec::new(),
        unsat_types: new_types,
        culprits: vec![],
        message: format!(
            "{} are unpopulatable as a consequence of the unsatisfiabilities above",
            parts.join(" and ")
        ),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RoleSeq, SchemaBuilder, ValueConstraint};

    fn run_check(check: &dyn Check, schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        check.run(schema, &schema.index(), &mut out);
        out
    }

    #[test]
    fn e1_flags_empty_enumeration() {
        let mut b = SchemaBuilder::new("s");
        let t = b.value_type("Empty", Some(ValueConstraint::Enumeration(vec![]))).unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", t, x).unwrap();
        let s = b.finish();
        let findings = run_check(&E1, &s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![t]);
        assert_eq!(findings[0].unsat_roles, vec![s.fact_type(f).first()]);
    }

    #[test]
    fn e1_flags_inverted_range() {
        let mut b = SchemaBuilder::new("s");
        b.value_type("Bad", Some(ValueConstraint::IntRange { min: 5, max: 1 })).unwrap();
        let s = b.finish();
        assert_eq!(run_check(&E1, &s).len(), 1);
    }

    #[test]
    fn e1_silent_on_nonempty() {
        let mut b = SchemaBuilder::new("s");
        b.value_type("Ok", Some(ValueConstraint::enumeration(["v"]))).unwrap();
        b.entity_type("Unbounded").unwrap();
        let s = b.finish();
        assert!(run_check(&E1, &s).is_empty());
    }

    #[test]
    fn e2_fires_on_single_value_irreflexive_ring() {
        // The paper's §5 example: an irreflexive role over a one-value type.
        let mut b = SchemaBuilder::new("s");
        let w = b.value_type("W", Some(ValueConstraint::enumeration(["only"]))).unwrap();
        let f = b.fact_type("sister_of", w, w).unwrap();
        b.ring(f, [RingKind::Irreflexive]).unwrap();
        let s = b.finish();
        let findings = run_check(&E2, &s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles.len(), 2);
    }

    #[test]
    fn e2_fires_on_implied_irreflexivity() {
        // acyclic implies irreflexive through the closure.
        let mut b = SchemaBuilder::new("s");
        let w = b.value_type("W", Some(ValueConstraint::enumeration(["only"]))).unwrap();
        let f = b.fact_type("parent_of", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        assert_eq!(run_check(&E2, &s).len(), 1);
    }

    #[test]
    fn e2_silent_with_two_values() {
        let mut b = SchemaBuilder::new("s");
        let w = b.value_type("W", Some(ValueConstraint::enumeration(["a", "b"]))).unwrap();
        let f = b.fact_type("sister_of", w, w).unwrap();
        b.ring(f, [RingKind::Irreflexive]).unwrap();
        let s = b.finish();
        assert!(run_check(&E2, &s).is_empty());
    }

    #[test]
    fn e2_silent_on_symmetric_only() {
        // symmetric does not imply irreflexivity; a single self-loop is fine.
        let mut b = SchemaBuilder::new("s");
        let w = b.value_type("W", Some(ValueConstraint::enumeration(["only"]))).unwrap();
        let f = b.fact_type("knows", w, w).unwrap();
        b.ring(f, [RingKind::Symmetric]).unwrap();
        let s = b.finish();
        assert!(run_check(&E2, &s).is_empty());
    }

    fn seed(types: Vec<ObjectTypeId>, roles: Vec<RoleId>) -> Vec<Finding> {
        vec![Finding {
            code: CheckCode::P2,
            severity: Severity::Unsatisfiable,
            unsat_roles: roles,
            joint_unsat_roles: Vec::new(),
            unsat_types: types,
            culprits: vec![],
            message: "seed".into(),
        }]
    }

    #[test]
    fn propagation_to_subtypes_and_roles() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, a).unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", sub, x).unwrap();
        let s = b.finish();
        let idx = s.index();
        let findings = propagate(&s, &idx, &seed(vec![a], vec![]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_types.contains(&sub));
        // Sub's role and, transitively, its co-role die.
        assert!(findings[0].unsat_roles.contains(&s.fact_type(f).first()));
        assert!(findings[0].unsat_roles.contains(&s.fact_type(f).second()));
    }

    #[test]
    fn propagation_through_mandatory() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).unwrap();
        let s = b.finish();
        let idx = s.index();
        // Seed: the role A must play is dead → A is dead.
        let findings = propagate(&s, &idx, &seed(vec![], vec![r]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_types.contains(&a));
    }

    #[test]
    fn propagation_through_subset_path() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        let idx = s.index();
        // r3 dead → r1 (⊆ r3) dead.
        let findings = propagate(&s, &idx, &seed(vec![], vec![r3]));
        assert!(findings[0].unsat_roles.contains(&r1));
    }

    #[test]
    fn propagation_through_totality() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let p = b.entity_type("P").unwrap();
        let q = b.entity_type("Q").unwrap();
        b.subtype(p, a).unwrap();
        b.subtype(q, a).unwrap();
        b.total_subtypes(a, [p, q]).unwrap();
        let s = b.finish();
        let idx = s.index();
        let findings = propagate(&s, &idx, &seed(vec![p, q], vec![]));
        assert!(findings[0].unsat_types.contains(&a));
    }

    #[test]
    fn e4_flags_subset_between_unrelated_players() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap(); // unrelated to A
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        let findings = run_check(&E4, &s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Unsatisfiable);
        // The sub side (f1) dies; f2 stays alive.
        assert!(findings[0].unsat_roles.contains(&r1));
        assert!(!findings[0].unsat_roles.contains(&r3));
    }

    #[test]
    fn e4_equality_kills_both_sides() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.equality([RoleSeq::single(r1), RoleSeq::single(r3)]).unwrap();
        let s = b.finish();
        let findings = run_check(&E4, &s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r1));
        assert!(findings[0].unsat_roles.contains(&r3));
    }

    #[test]
    fn e4_silent_on_compatible_players() {
        let mut b = SchemaBuilder::new("s");
        let p = b.entity_type("P").unwrap();
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, p).unwrap();
        b.subtype(c, p).unwrap(); // common supertype: may overlap
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        assert!(run_check(&E4, &s).is_empty());
    }

    #[test]
    fn e4_checks_predicate_positions() {
        // Predicate-level subset where only the SECOND position mismatches.
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap(); // unrelated to X
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let [r1, r2] = b.schema().fact_type(f1).roles();
        let [r3, r4] = b.schema().fact_type(f2).roles();
        b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)).unwrap();
        let s = b.finish();
        let findings = run_check(&E4, &s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r1));
        assert!(findings[0].unsat_roles.contains(&r2));
        let _ = (r3, r4);
    }

    #[test]
    fn e5_flags_mandatory_acyclic_ring() {
        let mut b = SchemaBuilder::new("s");
        let t = b.entity_type("T").unwrap();
        let f = b.fact_type("precedes", t, t).unwrap();
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        let findings = run_check(&E5, &s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![t]);
        assert_eq!(findings[0].unsat_roles.len(), 2);
    }

    #[test]
    fn e5_fires_for_mandatory_second_role_too() {
        // Mandatory on the target side: every instance needs an incoming
        // edge — the dual infinite-ascent argument.
        let mut b = SchemaBuilder::new("s");
        let t = b.entity_type("T").unwrap();
        let f = b.fact_type("precedes", t, t).unwrap();
        let r2 = b.schema().fact_type(f).second();
        b.mandatory(r2).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        assert_eq!(run_check(&E5, &s).len(), 1);
    }

    #[test]
    fn e5_silent_without_acyclicity() {
        // Asymmetric allows 3-cycles, so mandatory is fine.
        let mut b = SchemaBuilder::new("s");
        let t = b.entity_type("T").unwrap();
        let f = b.fact_type("rel", t, t).unwrap();
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).unwrap();
        b.ring(f, [RingKind::Asymmetric]).unwrap();
        let s = b.finish();
        assert!(run_check(&E5, &s).is_empty());
    }

    #[test]
    fn e5_silent_when_partners_escape_the_population() {
        // The co-player is a proper SUPERtype: chains can terminate at
        // instances outside the mandatory population.
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let child = b.entity_type("Child").unwrap();
        b.subtype(child, person).unwrap();
        let f = b.fact_type("has_parent", child, person).unwrap();
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        assert!(run_check(&E5, &s).is_empty());
    }

    #[test]
    fn e5_fires_when_co_player_is_subtype() {
        // Co-player a SUBtype of the mandatory player: targets are still
        // inside the mandatory population.
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let child = b.entity_type("Child").unwrap();
        b.subtype(child, person).unwrap();
        let f = b.fact_type("admires", person, child).unwrap();
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        let findings = run_check(&E5, &s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![person]);
    }

    #[test]
    fn no_seed_no_propagation() {
        let mut b = SchemaBuilder::new("s");
        b.entity_type("A").unwrap();
        let s = b.finish();
        let idx = s.index();
        assert!(propagate(&s, &idx, &[]).is_empty());
    }

    #[test]
    fn guideline_findings_do_not_seed() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, a).unwrap();
        let s = b.finish();
        let idx = s.index();
        let guideline = vec![Finding {
            code: CheckCode::Fr1,
            severity: Severity::Guideline,
            unsat_roles: vec![],
            joint_unsat_roles: Vec::new(),
            unsat_types: vec![a],
            culprits: vec![],
            message: "not unsat".into(),
        }];
        assert!(propagate(&s, &idx, &guideline).is_empty());
    }
}
