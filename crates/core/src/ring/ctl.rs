//! Cooperative interruption for the bounded ring searches.
//!
//! The ring decision procedures ([`super::euler::implies`],
//! [`super::table::compatible`]) enumerate relations over small domains.
//! The domains are small, but the enumeration is still a search loop, and
//! inside a service session nothing may run unbounded: every loop must be
//! able to stop on a step budget, a cancellation or an expired deadline.
//!
//! `orm-core` cannot depend on the execution context of `orm-dl` (the
//! dependency points the other way), so this module defines the minimal
//! control surface the searches need — a [`RingCtl`] callback charged once
//! per examined relation — and lets callers adapt their own context onto
//! it. The saturation engine in `orm-dl` adapts its `ExecCx`; plain
//! callers use [`Unbounded`]; tests use [`StepBudget`].

/// Why a ring search stopped early. Mirrors the interrupt vocabulary of
/// the execution context in `orm-dl` without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingInterrupt {
    /// The step budget ran out.
    BudgetExhausted,
    /// The caller cancelled the search.
    Cancelled,
    /// The caller's wall-clock deadline passed.
    DeadlineExceeded,
}

/// A cooperative control hook: the search calls [`RingCtl::on_step`] with
/// the number of units of work it is about to perform; an `Err` aborts the
/// search with that interrupt (and no verdict).
pub trait RingCtl {
    /// Charge `steps` units of work; `Err` stops the search.
    fn on_step(&mut self, steps: u64) -> Result<(), RingInterrupt>;
}

/// The no-op control: never interrupts. This is what the legacy
/// uninterruptible entry points pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Unbounded;

impl RingCtl for Unbounded {
    fn on_step(&mut self, _steps: u64) -> Result<(), RingInterrupt> {
        Ok(())
    }
}

/// A plain step budget: interrupts with [`RingInterrupt::BudgetExhausted`]
/// once the configured number of steps has been charged. A budget of `0`
/// interrupts before any work happens — the pre-expired regression case.
#[derive(Clone, Copy, Debug)]
pub struct StepBudget {
    remaining: u64,
}

impl StepBudget {
    /// A budget of `steps` units.
    pub fn new(steps: u64) -> StepBudget {
        StepBudget { remaining: steps }
    }

    /// Steps left before the budget interrupts.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl RingCtl for StepBudget {
    fn on_step(&mut self, steps: u64) -> Result<(), RingInterrupt> {
        if self.remaining < steps {
            self.remaining = 0;
            return Err(RingInterrupt::BudgetExhausted);
        }
        self.remaining -= steps;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_interrupts() {
        let mut ctl = Unbounded;
        for _ in 0..1000 {
            assert_eq!(ctl.on_step(u64::MAX / 2), Ok(()));
        }
    }

    #[test]
    fn step_budget_counts_down_and_trips() {
        let mut ctl = StepBudget::new(10);
        assert_eq!(ctl.on_step(4), Ok(()));
        assert_eq!(ctl.on_step(6), Ok(()));
        assert_eq!(ctl.remaining(), 0);
        assert_eq!(ctl.on_step(1), Err(RingInterrupt::BudgetExhausted));
    }

    #[test]
    fn zero_budget_is_pre_expired() {
        let mut ctl = StepBudget::new(0);
        assert_eq!(ctl.on_step(1), Err(RingInterrupt::BudgetExhausted));
    }
}
