//! Ring-constraint semantics (paper §2 Pattern 8, Fig. 12 and Table 1).
//!
//! The paper formalizes the relationships between ORM's six ring constraints
//! with an Euler diagram and derives a table of all compatible combinations.
//! This module makes that content executable:
//!
//! * [`euler`] — the logical semantics of each kind, the implication lattice
//!   (`acyclic ⇒ asymmetric ⇒ antisymmetric ∧ irreflexive`,
//!   `intransitive ⇒ irreflexive`), and relation-level checking;
//! * [`table`] — compatibility of kind sets, i.e. whether a **non-empty**
//!   relation satisfying all kinds exists, and the regenerated Table 1.
//!
//! Compatibility is decided by brute force over two-element domains. This is
//! *complete*, not an approximation: every ring kind is a universally
//! quantified first-order property, and universal properties are preserved
//! under induced substructures. So if any non-empty satisfying relation
//! exists at all, restricting it to the two endpoints of one of its edges
//! yields a non-empty satisfying relation over at most two elements.
//! `table::tests` cross-check the two-element verdicts against domains of
//! size three and four.

pub mod ctl;
pub mod euler;
pub mod table;

pub use ctl::{RingCtl, RingInterrupt, StepBudget, Unbounded};
pub use euler::{implied_closure, implies, implies_ctl, Relation};
pub use table::{
    all_compatible, compatible, compatible_ctl, incompatible_culprit, incompatible_culprit_ctl,
    maximal_compatible,
};
