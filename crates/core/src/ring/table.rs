//! Compatibility of ring-constraint combinations — the regenerated Table 1.
//!
//! A combination of ring kinds is *compatible* when a **non-empty** relation
//! satisfying all of them exists; incompatible combinations force the
//! constrained fact type to stay empty forever, which is exactly Pattern 8's
//! unsatisfiability condition. (The empty relation satisfies every ring
//! constraint, so incompatibility never makes the *schema* unsatisfiable —
//! only the roles.)
//!
//! Deciding compatibility over two-element domains is complete; see the
//! module docs of [`crate::ring`].

use super::ctl::{RingCtl, RingInterrupt};
use super::euler::Relation;
use orm_model::{RingKind, RingKinds};
use std::sync::OnceLock;

static LUT: OnceLock<[bool; 64]> = OnceLock::new();

fn lut() -> &'static [bool; 64] {
    LUT.get_or_init(|| {
        let mut table = [false; 64];
        let relations: Vec<Relation> = Relation::enumerate(2).filter(|r| !r.is_empty()).collect();
        for (i, kinds) in RingKinds::all_subsets().enumerate() {
            table[i] = relations.iter().any(|r| r.satisfies_all(kinds));
        }
        table
    })
}

fn lut_index(kinds: RingKinds) -> usize {
    RingKinds::all_subsets().position(|k| k == kinds).expect("all 64 subsets enumerated")
}

/// Whether a combination of ring kinds admits a non-empty relation.
pub fn compatible(kinds: RingKinds) -> bool {
    lut()[lut_index(kinds)]
}

/// Interruptible form of [`compatible`].
///
/// Once the process-wide lookup table has been built this costs a single
/// control step; before that it decides the one queried combination by a
/// metered scan of the 15 non-empty two-element relations (one step each)
/// *without* committing to the full 64-entry build, so a tight budget or an
/// already-expired context interrupts instead of paying the table cost.
pub fn compatible_ctl(kinds: RingKinds, ctl: &mut dyn RingCtl) -> Result<bool, RingInterrupt> {
    if let Some(table) = LUT.get() {
        ctl.on_step(1)?;
        return Ok(table[lut_index(kinds)]);
    }
    for rel in Relation::enumerate(2).filter(|r| !r.is_empty()) {
        ctl.on_step(1)?;
        if rel.satisfies_all(kinds) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Interruptible form of [`incompatible_culprit`]: decides each candidate
/// subset through [`compatible_ctl`], so the search charges the control and
/// aborts with an interrupt instead of a verdict when the budget runs out.
pub fn incompatible_culprit_ctl(
    kinds: RingKinds,
    ctl: &mut dyn RingCtl,
) -> Result<Option<RingKinds>, RingInterrupt> {
    if compatible_ctl(kinds, ctl)? {
        return Ok(None);
    }
    let members: Vec<RingKind> = kinds.iter().collect();
    let mut subsets: Vec<RingKinds> = (0u32..(1 << members.len()))
        .map(|mask| {
            members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, k)| *k)
                .collect()
        })
        .collect();
    subsets.sort_by_key(|s| s.len());
    for s in subsets {
        if !s.is_empty() && !compatible_ctl(s, ctl)? {
            return Ok(Some(s));
        }
    }
    Ok(None)
}

/// All compatible combinations (including the empty combination), in subset
/// enumeration order. This is the raw content behind the paper's Table 1.
pub fn all_compatible() -> Vec<RingKinds> {
    RingKinds::all_subsets().filter(|k| compatible(*k)).collect()
}

/// The *maximal* compatible combinations: compatible sets such that adding
/// any further kind makes them incompatible. These are the rows a compact
/// rendering of Table 1 needs — every compatible combination is a subset of
/// one of them.
pub fn maximal_compatible() -> Vec<RingKinds> {
    let compat = all_compatible();
    compat
        .iter()
        .copied()
        .filter(|k| {
            RingKind::ALL.iter().all(|extra| {
                if k.contains(*extra) {
                    return true;
                }
                let mut bigger = *k;
                bigger.insert(*extra);
                !compatible(bigger)
            })
        })
        .collect()
}

/// For an incompatible combination, identify a *minimal* incompatible subset
/// — the smallest sub-combination that is already contradictory. Diagnostics
/// report this as the culprit ("acyclic and symmetric are incompatible")
/// instead of dumping the full kind set.
///
/// Returns `None` if `kinds` is in fact compatible.
pub fn incompatible_culprit(kinds: RingKinds) -> Option<RingKinds> {
    if compatible(kinds) {
        return None;
    }
    let members: Vec<RingKind> = kinds.iter().collect();
    // Subsets ordered by size so the first hit is minimal.
    let mut subsets: Vec<RingKinds> = (0u32..(1 << members.len()))
        .map(|mask| {
            members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, k)| *k)
                .collect()
        })
        .collect();
    subsets.sort_by_key(|s| s.len());
    subsets.into_iter().find(|s| !s.is_empty() && !compatible(*s))
}

/// Render the regenerated Table 1 as fixed-width text: one row per
/// compatible combination, kinds marked by their abbreviation.
pub fn render_table() -> String {
    let mut out = String::new();
    out.push_str("compatible ring-constraint combinations (regenerated Table 1)\n");
    out.push_str(&format!(
        "{:<6}{}\n",
        "",
        RingKind::ALL.map(|k| format!("{:<5}", k.abbrev())).concat()
    ));
    for (row, kinds) in all_compatible().iter().enumerate() {
        if kinds.is_empty() {
            continue;
        }
        out.push_str(&format!("{:<6}", row));
        for k in RingKind::ALL {
            out.push_str(&format!("{:<5}", if kinds.contains(k) { "x" } else { "." }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::euler::implied_closure;
    use orm_model::RingKind::*;

    #[test]
    fn empty_and_singletons_are_compatible() {
        assert!(compatible(RingKinds::EMPTY));
        for k in RingKind::ALL {
            assert!(compatible(RingKinds::only(k)), "{k} alone must be compatible");
        }
    }

    #[test]
    fn paper_euler_incompatibilities() {
        // Fig. 12: "acyclic and symmetric are incompatible".
        assert!(!compatible(RingKinds::from_iter([Acyclic, Symmetric])));
        // asymmetric + symmetric force emptiness.
        assert!(!compatible(RingKinds::from_iter([Asymmetric, Symmetric])));
    }

    #[test]
    fn paper_example_incompatible_combinations() {
        // §2 Pattern 8 lists three example incompatible unions:
        // {sym, it} ∪ {ans}, {sym, it} ∪ {it, ac}, {ans, it} ∪ {ir, sym}.
        assert!(!compatible(RingKinds::from_iter([Symmetric, Intransitive, Antisymmetric])));
        assert!(!compatible(RingKinds::from_iter([Symmetric, Intransitive, Acyclic])));
        assert!(!compatible(RingKinds::from_iter([
            Antisymmetric,
            Intransitive,
            Irreflexive,
            Symmetric
        ])));
    }

    #[test]
    fn paper_example_compatible_combinations() {
        // The unions above are incompatible, but their parts appear in
        // Table 1 — they must be compatible on their own.
        assert!(compatible(RingKinds::from_iter([Symmetric, Intransitive])));
        assert!(compatible(RingKinds::from_iter([Antisymmetric])));
        assert!(compatible(RingKinds::from_iter([Intransitive, Acyclic])));
        assert!(compatible(RingKinds::from_iter([Antisymmetric, Intransitive])));
        assert!(compatible(RingKinds::from_iter([Irreflexive, Symmetric])));
    }

    #[test]
    fn symmetric_with_antisymmetric_needs_loops() {
        // sym + ans admits only self-loops, so it is compatible…
        assert!(compatible(RingKinds::from_iter([Symmetric, Antisymmetric])));
        // …until irreflexivity forbids those too.
        assert!(!compatible(RingKinds::from_iter([Symmetric, Antisymmetric, Irreflexive])));
    }

    #[test]
    fn closure_preserves_compatibility() {
        // Adding implied kinds never flips a combination's verdict.
        for kinds in RingKinds::all_subsets() {
            assert_eq!(
                compatible(kinds),
                compatible(implied_closure(kinds)),
                "closure changed verdict for {kinds}"
            );
        }
    }

    #[test]
    fn two_element_verdicts_agree_with_larger_domains() {
        // Completeness of the two-element decision procedure, checked
        // explicitly against domains of size 3: a combination compatible at
        // size 2 stays compatible (the same relation embeds), and a
        // combination incompatible at size 2 admits no non-empty relation at
        // size 3 either.
        for kinds in RingKinds::all_subsets() {
            let at3 = Relation::enumerate(3).any(|r| !r.is_empty() && r.satisfies_all(kinds));
            assert_eq!(compatible(kinds), at3, "domain-3 disagreement for {kinds}");
        }
    }

    #[test]
    fn compatibility_is_downward_closed() {
        // Removing kinds from a compatible set keeps it compatible.
        for kinds in all_compatible() {
            for k in kinds.iter() {
                let mut smaller = kinds;
                smaller.remove(k);
                assert!(compatible(smaller));
            }
        }
    }

    #[test]
    fn maximal_sets_cover_all_compatible() {
        let maximal = maximal_compatible();
        for kinds in all_compatible() {
            assert!(
                maximal.iter().any(|m| kinds.is_subset(*m)),
                "{kinds} not covered by any maximal combination"
            );
        }
        // And maximal sets really are maximal.
        for m in &maximal {
            for extra in RingKind::ALL {
                if !m.contains(extra) {
                    let mut bigger = *m;
                    bigger.insert(extra);
                    assert!(!compatible(bigger));
                }
            }
        }
    }

    #[test]
    fn culprit_is_minimal_and_incompatible() {
        let kinds = RingKinds::from_iter([Symmetric, Intransitive, Antisymmetric]);
        let culprit = incompatible_culprit(kinds).unwrap();
        assert!(!compatible(culprit));
        assert!(culprit.is_subset(kinds));
        // Minimality: every proper subset of the culprit is compatible.
        for k in culprit.iter() {
            let mut smaller = culprit;
            smaller.remove(k);
            assert!(compatible(smaller));
        }
        assert!(incompatible_culprit(RingKinds::only(Symmetric)).is_none());
    }

    #[test]
    fn ctl_variants_agree_with_unbounded_and_respect_budgets() {
        use crate::ring::ctl::{RingInterrupt, StepBudget, Unbounded};
        // Whether the LUT is warm or cold, a pre-expired budget never
        // produces a verdict.
        let mut zero = StepBudget::new(0);
        assert_eq!(
            compatible_ctl(RingKinds::from_iter([Acyclic, Symmetric]), &mut zero),
            Err(RingInterrupt::BudgetExhausted)
        );
        let mut zero = StepBudget::new(0);
        assert_eq!(
            incompatible_culprit_ctl(RingKinds::from_iter([Acyclic, Symmetric]), &mut zero),
            Err(RingInterrupt::BudgetExhausted)
        );
        // With room to run, every subset's verdict matches the LUT path.
        for kinds in RingKinds::all_subsets() {
            assert_eq!(compatible_ctl(kinds, &mut Unbounded), Ok(compatible(kinds)));
            assert_eq!(
                incompatible_culprit_ctl(kinds, &mut Unbounded),
                Ok(incompatible_culprit(kinds))
            );
        }
    }

    #[test]
    fn render_table_mentions_all_kinds() {
        let table = render_table();
        for k in RingKind::ALL {
            assert!(table.contains(k.abbrev()));
        }
        assert!(table.lines().count() > 10);
    }
}
