//! Logical semantics of the six ring constraints and their implication
//! lattice (the content of the paper's Fig. 12).

use super::ctl::{RingCtl, RingInterrupt, Unbounded};
use orm_model::{RingKind, RingKinds};

/// A concrete binary relation over a small domain `{0, .., n-1}`, used to
/// decide ring-kind semantics by enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    domain: usize,
    pairs: Vec<(usize, usize)>,
}

impl Relation {
    /// Create a relation over `domain` elements from explicit pairs.
    ///
    /// # Panics
    /// Panics if a pair mentions an element outside the domain.
    pub fn new(domain: usize, pairs: impl IntoIterator<Item = (usize, usize)>) -> Relation {
        let pairs: Vec<(usize, usize)> = pairs.into_iter().collect();
        for (x, y) in &pairs {
            assert!(*x < domain && *y < domain, "pair ({x},{y}) outside domain {domain}");
        }
        Relation { domain, pairs }
    }

    /// Number of domain elements.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Whether the relation holds on `(x, y)`.
    pub fn holds(&self, x: usize, y: usize) -> bool {
        self.pairs.contains(&(x, y))
    }

    /// Whether the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Enumerate every relation over a domain of `n` elements
    /// (`2^(n*n)` relations — keep `n ≤ 3` in tests).
    pub fn enumerate(n: usize) -> impl Iterator<Item = Relation> {
        let cells: Vec<(usize, usize)> = (0..n).flat_map(|x| (0..n).map(move |y| (x, y))).collect();
        let count = 1u64 << cells.len();
        (0..count).map(move |mask| {
            let pairs = cells
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, p)| *p)
                .collect::<Vec<_>>();
            Relation { domain: n, pairs }
        })
    }

    /// Whether this relation satisfies a single ring kind.
    pub fn satisfies(&self, kind: RingKind) -> bool {
        let n = self.domain;
        match kind {
            RingKind::Irreflexive => (0..n).all(|x| !self.holds(x, x)),
            RingKind::Antisymmetric => {
                (0..n).all(|x| (0..n).all(|y| !(self.holds(x, y) && self.holds(y, x)) || x == y))
            }
            RingKind::Asymmetric => self.pairs.iter().all(|(x, y)| !self.holds(*y, *x)),
            RingKind::Acyclic => !self.has_cycle(),
            RingKind::Intransitive => (0..n).all(|x| {
                (0..n).all(|y| {
                    (0..n).all(|z| !(self.holds(x, y) && self.holds(y, z) && self.holds(x, z)))
                })
            }),
            RingKind::Symmetric => self.pairs.iter().all(|(x, y)| self.holds(*y, *x)),
        }
    }

    /// Whether this relation satisfies every kind in `kinds`.
    pub fn satisfies_all(&self, kinds: RingKinds) -> bool {
        kinds.iter().all(|k| self.satisfies(k))
    }

    fn has_cycle(&self) -> bool {
        // Colors: 0 = unvisited, 1 = on stack, 2 = done.
        let n = self.domain;
        let mut color = vec![0u8; n];
        fn dfs(rel: &Relation, x: usize, color: &mut [u8]) -> bool {
            color[x] = 1;
            for y in 0..rel.domain {
                if rel.holds(x, y) {
                    if color[y] == 1 {
                        return true;
                    }
                    if color[y] == 0 && dfs(rel, y, color) {
                        return true;
                    }
                }
            }
            color[x] = 2;
            false
        }
        (0..n).any(|x| color[x] == 0 && dfs(self, x, &mut color))
    }
}

/// The implication lattice of Fig. 12:
///
/// * acyclic ⇒ asymmetric,
/// * asymmetric ⇒ antisymmetric and irreflexive (and conversely,
///   antisymmetric ∧ irreflexive = asymmetric),
/// * intransitive ⇒ irreflexive.
///
/// Returns the set of kinds directly implied by `kind` (excluding `kind`
/// itself).
pub fn direct_implications(kind: RingKind) -> RingKinds {
    match kind {
        RingKind::Acyclic => RingKinds::only(RingKind::Asymmetric),
        RingKind::Asymmetric => {
            RingKinds::from_iter([RingKind::Antisymmetric, RingKind::Irreflexive])
        }
        RingKind::Intransitive => RingKinds::only(RingKind::Irreflexive),
        RingKind::Antisymmetric | RingKind::Irreflexive | RingKind::Symmetric => RingKinds::EMPTY,
    }
}

/// Close a kind set under the implication lattice, including the combined
/// rule *antisymmetric ∧ irreflexive ⇒ asymmetric*.
pub fn implied_closure(kinds: RingKinds) -> RingKinds {
    let mut cur = kinds;
    loop {
        let mut next = cur;
        for k in cur.iter() {
            next = next.union(direct_implications(k));
        }
        if next.contains(RingKind::Antisymmetric) && next.contains(RingKind::Irreflexive) {
            next.insert(RingKind::Asymmetric);
        }
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// Whether `premise` semantically implies `conclusion`: every relation
/// (over domains up to `max_domain` elements) satisfying all of `premise`
/// satisfies all of `conclusion`.
///
/// With `max_domain ≥ 3` this refutes all false implications between ring
/// kinds — the counterexamples (e.g. symmetric-irreflexive vs intransitive)
/// need three elements.
pub fn implies(premise: RingKinds, conclusion: RingKinds, max_domain: usize) -> bool {
    implies_ctl(premise, conclusion, max_domain, &mut Unbounded)
        .expect("Unbounded control never interrupts")
}

/// Interruptible form of [`implies`]: charges one [`RingCtl`] step per
/// examined relation and aborts with the control's interrupt instead of a
/// verdict. `implies` is this with [`Unbounded`].
pub fn implies_ctl(
    premise: RingKinds,
    conclusion: RingKinds,
    max_domain: usize,
    ctl: &mut dyn RingCtl,
) -> Result<bool, RingInterrupt> {
    for n in 1..=max_domain {
        for rel in Relation::enumerate(n) {
            ctl.on_step(1)?;
            if rel.satisfies_all(premise) && !rel.satisfies_all(conclusion) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::RingKind::*;

    #[test]
    fn relation_basics() {
        let r = Relation::new(2, [(0, 1)]);
        assert!(r.holds(0, 1));
        assert!(!r.holds(1, 0));
        assert!(!r.is_empty());
        assert!(Relation::new(2, []).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_pair_panics() {
        Relation::new(1, [(0, 1)]);
    }

    #[test]
    fn enumerate_counts() {
        assert_eq!(Relation::enumerate(1).count(), 2);
        assert_eq!(Relation::enumerate(2).count(), 16);
    }

    #[test]
    fn kind_semantics_on_examples() {
        let loop0 = Relation::new(1, [(0, 0)]);
        assert!(!loop0.satisfies(Irreflexive));
        assert!(loop0.satisfies(Antisymmetric));
        assert!(!loop0.satisfies(Asymmetric));
        assert!(!loop0.satisfies(Acyclic));
        assert!(!loop0.satisfies(Intransitive)); // r(0,0)∧r(0,0) → ¬r(0,0)
        assert!(loop0.satisfies(Symmetric));

        let edge = Relation::new(2, [(0, 1)]);
        assert!(edge.satisfies(Irreflexive));
        assert!(edge.satisfies(Antisymmetric));
        assert!(edge.satisfies(Asymmetric));
        assert!(edge.satisfies(Acyclic));
        assert!(edge.satisfies(Intransitive));
        assert!(!edge.satisfies(Symmetric));

        let two_cycle = Relation::new(2, [(0, 1), (1, 0)]);
        assert!(two_cycle.satisfies(Irreflexive));
        assert!(!two_cycle.satisfies(Antisymmetric));
        assert!(!two_cycle.satisfies(Asymmetric));
        assert!(!two_cycle.satisfies(Acyclic));
        assert!(two_cycle.satisfies(Symmetric));

        let chain = Relation::new(3, [(0, 1), (1, 2), (0, 2)]);
        assert!(chain.satisfies(Acyclic));
        assert!(!chain.satisfies(Intransitive)); // transitive edge present
    }

    #[test]
    fn acyclic_detects_long_cycles() {
        let r = Relation::new(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!r.satisfies(Acyclic));
        assert!(r.satisfies(Irreflexive));
        assert!(r.satisfies(Asymmetric));
    }

    #[test]
    fn implication_lattice_matches_semantics() {
        // Every claim of the declarative lattice holds semantically.
        for kind in RingKind::ALL {
            let implied = direct_implications(kind);
            assert!(implies(RingKinds::only(kind), implied, 3), "{kind} should imply {implied}");
        }
    }

    #[test]
    fn asymmetric_equals_antisymmetric_plus_irreflexive() {
        // Fig. 12: "the combination between antisymmetric and irreflexivity
        // is exactly asymmetric".
        let as_ = RingKinds::only(Asymmetric);
        let ans_ir = RingKinds::from_iter([Antisymmetric, Irreflexive]);
        assert!(implies(as_, ans_ir, 3));
        assert!(implies(ans_ir, as_, 3));
    }

    #[test]
    fn intransitive_implies_irreflexive_semantically() {
        assert!(implies(RingKinds::only(Intransitive), RingKinds::only(Irreflexive), 3));
    }

    #[test]
    fn false_implications_are_refuted() {
        // symmetric ∧ irreflexive does NOT imply intransitive — the
        // counterexample needs three elements (triangle).
        let sym_ir = RingKinds::from_iter([Symmetric, Irreflexive]);
        assert!(!implies(sym_ir, RingKinds::only(Intransitive), 3));
        // irreflexive does not imply antisymmetric.
        assert!(!implies(RingKinds::only(Irreflexive), RingKinds::only(Antisymmetric), 2));
        // antisymmetric does not imply irreflexive.
        assert!(!implies(RingKinds::only(Antisymmetric), RingKinds::only(Irreflexive), 1));
    }

    #[test]
    fn closure_is_idempotent_and_monotone() {
        for kinds in RingKinds::all_subsets() {
            let once = implied_closure(kinds);
            assert!(kinds.is_subset(once));
            assert_eq!(implied_closure(once), once);
        }
    }

    #[test]
    fn closure_examples() {
        let ac = implied_closure(RingKinds::only(Acyclic));
        assert!(ac.contains(Asymmetric));
        assert!(ac.contains(Antisymmetric));
        assert!(ac.contains(Irreflexive));
        let ans_ir = implied_closure(RingKinds::from_iter([Antisymmetric, Irreflexive]));
        assert!(ans_ir.contains(Asymmetric));
    }

    #[test]
    fn implies_ctl_respects_budgets() {
        use crate::ring::ctl::{RingInterrupt, StepBudget};
        // A pre-expired budget interrupts before any relation is examined.
        let mut zero = StepBudget::new(0);
        assert_eq!(
            implies_ctl(RingKinds::only(Acyclic), RingKinds::only(Asymmetric), 3, &mut zero),
            Err(RingInterrupt::BudgetExhausted)
        );
        // A generous budget reproduces the unbounded verdict.
        let mut plenty = StepBudget::new(1_000_000);
        assert_eq!(
            implies_ctl(RingKinds::only(Acyclic), RingKinds::only(Asymmetric), 3, &mut plenty),
            Ok(true)
        );
    }

    #[test]
    fn closure_is_semantically_sound() {
        // Whatever the closure adds is genuinely implied.
        for kinds in RingKinds::all_subsets() {
            let closed = implied_closure(kinds);
            assert!(implies(kinds, closed, 3), "{kinds} should imply {closed}");
        }
    }
}
