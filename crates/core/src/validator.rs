//! The validator: configurable check execution with revision-based caching
//! and an incremental mode for interactive tools.
//!
//! This reproduces the role DogmaModeler's *Validator Settings* window plays
//! in the paper (§4, Fig. 15): each pattern can be enabled or disabled
//! independently, and validation is cheap enough to re-run on every edit of
//! the schema.

use crate::diagnostics::{CheckCode, Finding, Report};
use crate::extensions::{propagate, E1, E2, E4, E5};
use crate::formation::formation_rules;
use crate::patterns::{paper_patterns, Check, Trigger};
use crate::ridl::ridl_rules;
use orm_model::{ConstraintKind, Schema};
use parking_lot::Mutex;
use std::collections::BTreeSet;

/// Which checks run, and whether consequence propagation (E3) follows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidatorSettings {
    enabled: BTreeSet<CheckCode>,
    /// Run [`propagate`] over the unsatisfiable findings (extension E3).
    pub propagate: bool,
}

impl Default for ValidatorSettings {
    /// The paper's default: the nine patterns, no lints, no propagation.
    fn default() -> Self {
        ValidatorSettings { enabled: CheckCode::PATTERNS.into_iter().collect(), propagate: false }
    }
}

impl ValidatorSettings {
    /// The nine patterns only (the paper's default).
    pub fn patterns_only() -> Self {
        Self::default()
    }

    /// Everything: patterns, formation rules, RIDL lints, extensions,
    /// propagation.
    pub fn all() -> Self {
        ValidatorSettings { enabled: CheckCode::all().collect(), propagate: true }
    }

    /// Formation-rule and RIDL lints only.
    pub fn lints_only() -> Self {
        ValidatorSettings {
            enabled: CheckCode::FORMATION_RULES.into_iter().chain(CheckCode::RIDL_RULES).collect(),
            propagate: false,
        }
    }

    /// No checks at all (build up with [`ValidatorSettings::with`]).
    pub fn none() -> Self {
        ValidatorSettings { enabled: BTreeSet::new(), propagate: false }
    }

    /// Enable a check.
    pub fn with(mut self, code: CheckCode) -> Self {
        self.enabled.insert(code);
        self
    }

    /// Disable a check (the Fig. 15 checkbox unticked).
    pub fn without(mut self, code: CheckCode) -> Self {
        self.enabled.remove(&code);
        self
    }

    /// Enable propagation (E3).
    pub fn with_propagation(mut self) -> Self {
        self.propagate = true;
        self
    }

    /// Whether a check is enabled.
    pub fn is_enabled(&self, code: CheckCode) -> bool {
        self.enabled.contains(&code)
    }

    /// The enabled checks.
    pub fn enabled(&self) -> impl Iterator<Item = CheckCode> + '_ {
        self.enabled.iter().copied()
    }
}

/// A hint describing what the last schema edit touched; the incremental
/// validator re-runs only the checks whose [`Trigger`]s match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditHint {
    /// A constraint of this kind was added, removed or changed.
    Constraint(ConstraintKind),
    /// A subtype link changed.
    Subtyping,
    /// A value constraint changed.
    Values,
    /// Object/fact types were added; everything structural may change.
    Structure,
}

impl EditHint {
    fn matches(&self, trigger: &Trigger) -> bool {
        match (self, trigger) {
            (EditHint::Constraint(a), Trigger::Constraint(b)) => a == b,
            (EditHint::Subtyping, Trigger::Subtyping) => true,
            (EditHint::Values, Trigger::Values) => true,
            // Structural edits invalidate everything; conservative.
            (EditHint::Structure, _) => true,
            _ => false,
        }
    }
}

/// Runs the enabled checks over schemas, caching by schema revision.
pub struct Validator {
    settings: ValidatorSettings,
    checks: Vec<Box<dyn Check>>,
    cache: Mutex<Option<(u64, Report)>>,
}

impl Validator {
    /// Validator with the paper's default settings (nine patterns).
    pub fn new() -> Self {
        Self::with_settings(ValidatorSettings::default())
    }

    /// Validator with explicit settings.
    pub fn with_settings(settings: ValidatorSettings) -> Self {
        let mut checks: Vec<Box<dyn Check>> = Vec::new();
        checks.extend(paper_patterns());
        checks.extend(formation_rules());
        checks.extend(ridl_rules());
        checks.push(Box::new(E1));
        checks.push(Box::new(E2));
        checks.push(Box::new(E4));
        checks.push(Box::new(E5));
        checks.retain(|c| settings.is_enabled(c.code()));
        Validator { settings, checks, cache: Mutex::new(None) }
    }

    /// The active settings.
    pub fn settings(&self) -> &ValidatorSettings {
        &self.settings
    }

    /// Validate `schema`, returning the cached report when the schema has
    /// not changed since the last call.
    pub fn validate(&self, schema: &Schema) -> Report {
        if let Some((rev, report)) = self.cache.lock().as_ref() {
            if *rev == schema.revision() {
                return report.clone();
            }
        }
        let report = self.run_all(schema);
        *self.cache.lock() = Some((schema.revision(), report.clone()));
        report
    }

    fn run_all(&self, schema: &Schema) -> Report {
        let idx = schema.index();
        let mut findings = Vec::new();
        for check in &self.checks {
            check.run(schema, &idx, &mut findings);
        }
        if self.settings.propagate {
            let extra = propagate(schema, &idx, &findings);
            findings.extend(extra);
        }
        Report { findings, schema_revision: schema.revision() }
    }

    /// Incremental re-validation: re-run only the checks triggered by
    /// `hint`, merging with the previous report's findings for the
    /// untouched checks. Falls back to a full run when no previous report
    /// exists.
    ///
    /// This is the interactive-modeling optimization benchmarked in
    /// `ablation_incremental`; [`Validator::validate`] is always the
    /// semantically safe choice.
    pub fn validate_incremental(&self, schema: &Schema, hint: &EditHint) -> Report {
        let previous = self.cache.lock().clone();
        let Some((_, previous)) = previous else {
            return self.validate(schema);
        };
        let idx = schema.index();
        let mut findings = Vec::new();
        let mut rerun: BTreeSet<CheckCode> = BTreeSet::new();
        for check in &self.checks {
            if check.triggers().iter().any(|t| hint.matches(t)) {
                rerun.insert(check.code());
                check.run(schema, &idx, &mut findings);
            }
        }
        // Keep previous findings of untouched checks (except E3, rebuilt
        // below from the merged seed).
        for f in previous.findings {
            if !rerun.contains(&f.code) && f.code != CheckCode::E3 {
                findings.push(f);
            }
        }
        sort_findings(&mut findings);
        if self.settings.propagate {
            let extra = propagate(schema, &idx, &findings);
            findings.extend(extra);
        }
        let report = Report { findings, schema_revision: schema.revision() };
        *self.cache.lock() = Some((schema.revision(), report.clone()));
        report
    }
}

impl Default for Validator {
    fn default() -> Self {
        Self::new()
    }
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| a.code.cmp(&b.code).then_with(|| a.message.cmp(&b.message)));
}

/// One-shot validation with default settings.
pub fn validate(schema: &Schema) -> Report {
    Validator::new().validate(schema)
}

/// One-shot validation with every check enabled.
pub fn validate_all(schema: &Schema) -> Report {
    Validator::with_settings(ValidatorSettings::all()).validate(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use orm_model::SchemaBuilder;

    fn fig1() -> Schema {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        b.finish()
    }

    #[test]
    fn default_settings_enable_exactly_the_patterns() {
        let s = ValidatorSettings::default();
        for code in CheckCode::PATTERNS {
            assert!(s.is_enabled(code));
        }
        for code in CheckCode::FORMATION_RULES {
            assert!(!s.is_enabled(code));
        }
        assert!(!s.propagate);
    }

    #[test]
    fn with_and_without_toggle_checks() {
        let s = ValidatorSettings::default().without(CheckCode::P8).with(CheckCode::Fr6);
        assert!(!s.is_enabled(CheckCode::P8));
        assert!(s.is_enabled(CheckCode::Fr6));
        assert_eq!(s.enabled().count(), 9);
    }

    #[test]
    fn validate_finds_fig1_problem() {
        let report = validate(&fig1());
        assert!(report.has_unsat());
        assert_eq!(report.by_code(CheckCode::P2).count(), 1);
    }

    #[test]
    fn disabled_pattern_stays_silent() {
        let v = Validator::with_settings(ValidatorSettings::default().without(CheckCode::P2));
        let report = v.validate(&fig1());
        assert!(!report.has_unsat());
    }

    #[test]
    fn cache_hits_on_unchanged_schema() {
        let v = Validator::new();
        let s = fig1();
        let r1 = v.validate(&s);
        let r2 = v.validate(&s);
        assert_eq!(r1, r2);
    }

    #[test]
    fn cache_invalidated_by_edit() {
        let v = Validator::new();
        let mut s = fig1();
        let before = v.validate(&s);
        assert!(before.has_unsat());
        // Remove the exclusive-types constraint (the only constraint).
        let cid = s.constraints().next().map(|(id, _)| id).unwrap();
        s.remove_constraint(cid);
        let after = v.validate(&s);
        assert!(!after.has_unsat());
        assert_eq!(after.schema_revision, s.revision());
    }

    #[test]
    fn incremental_matches_full_validation() {
        let v = Validator::new();
        let mut s = fig1();
        v.validate(&s); // prime the cache
        let cid = s.constraints().next().map(|(id, _)| id).unwrap();
        s.remove_constraint(cid);
        let incremental =
            v.validate_incremental(&s, &EditHint::Constraint(ConstraintKind::ExclusiveTypes));
        let full = Validator::new().validate(&s);
        assert_eq!(incremental.has_unsat(), full.has_unsat());
        assert_eq!(incremental.unsat_types(), full.unsat_types());
    }

    #[test]
    fn incremental_without_cache_falls_back_to_full() {
        let v = Validator::new();
        let s = fig1();
        let report = v.validate_incremental(&s, &EditHint::Subtyping);
        assert!(report.has_unsat());
    }

    #[test]
    fn propagation_runs_when_enabled() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(c, bb).unwrap();
        b.subtype(sub, c).unwrap(); // hangs off the P1-doomed C
        let s = b.finish();
        let plain = validate(&s);
        assert!(plain.unsat_types().contains(&c));
        assert!(!plain.unsat_types().contains(&sub));
        let with_prop =
            Validator::with_settings(ValidatorSettings::default().with_propagation()).validate(&s);
        assert!(with_prop.unsat_types().contains(&sub));
        assert_eq!(with_prop.by_code(CheckCode::E3).count(), 1);
    }

    #[test]
    fn validate_all_includes_lints() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        b.fact_type("f", a, a).unwrap(); // no uniqueness: V2 guideline
        let s = b.finish();
        let report = validate_all(&s);
        assert!(report.by_code(CheckCode::V2).count() == 1);
        assert!(report.by_severity(Severity::Guideline).count() >= 1);
    }

    #[test]
    fn clean_schema_produces_clean_report() {
        let mut b = SchemaBuilder::new("clean");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.unique([r]).unwrap();
        b.mandatory(r).unwrap();
        let s = b.finish();
        assert!(validate(&s).is_clean());
    }
}
