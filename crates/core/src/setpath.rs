//! Set-path reachability between role sequences (paper §2, Pattern 6 and
//! Fig. 9).
//!
//! A *SetPath* from `X` to `Y` is a chain of subset and/or equality
//! constraints implying `pop(X) ⊆ pop(Y)`. Pattern 6 looks for a SetPath
//! between the arguments of an exclusion constraint; RIDL rules S1–S4 reuse
//! the same graph.
//!
//! Fig. 9's implications are encoded structurally:
//!
//! * a subset/equality between whole predicates `(a,b) ⊆ (c,d)` **implies**
//!   the positionwise role subsets `a ⊆ c` and `b ⊆ d` (projection);
//! * an equality is two subsets (one in each direction);
//! * an exclusion between single roles implies an exclusion between their
//!   predicates — used directly by Pattern 6 rather than materialised here.
//!
//! Role-level subsets do **not** imply predicate-level subsets, so the graph
//! keeps the two node levels separate and only projects downward.

use orm_model::{Constraint, ConstraintId, RoleId, RoleSeq, Schema, SetComparisonKind};
use std::collections::{HashMap, VecDeque};

/// A node in the set-path graph: a single role or a whole predicate
/// (ordered).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A single role.
    Role(RoleId),
    /// An ordered pair of roles spanning one fact type.
    Pair(RoleId, RoleId),
}

impl Node {
    /// Build a node from a role sequence (length 1 or 2).
    pub fn from_seq(seq: &RoleSeq) -> Node {
        match seq.roles() {
            [r] => Node::Role(*r),
            [a, b] => Node::Pair(*a, *b),
            other => panic!("role sequences have length 1 or 2, got {}", other.len()),
        }
    }

    /// The roles of the node.
    pub fn roles(&self) -> Vec<RoleId> {
        match self {
            Node::Role(r) => vec![*r],
            Node::Pair(a, b) => vec![*a, *b],
        }
    }
}

/// Directed graph of subset edges between role sequences, including the
/// projections implied by Fig. 9.
#[derive(Debug, Default)]
pub struct SetPathGraph {
    edges: HashMap<Node, Vec<(Node, ConstraintId)>>,
    nodes: Vec<Node>,
}

impl SetPathGraph {
    /// Build the graph from all live subset/equality constraints of
    /// `schema`. The optional `skip` constraint is excluded — RIDL S1/S3 use
    /// this to ask "is this constraint implied by the others?".
    pub fn build(schema: &Schema, skip: Option<ConstraintId>) -> SetPathGraph {
        let mut g = SetPathGraph::default();
        for (cid, c) in schema.constraints() {
            if Some(cid) == skip {
                continue;
            }
            let Constraint::SetComparison(sc) = c else { continue };
            match sc.kind {
                SetComparisonKind::Subset => {
                    let sub = Node::from_seq(&sc.args[0]);
                    let sup = Node::from_seq(&sc.args[1]);
                    g.add_edge(sub, sup, cid);
                }
                SetComparisonKind::Equality => {
                    for i in 0..sc.args.len() {
                        for j in 0..sc.args.len() {
                            if i != j {
                                g.add_edge(
                                    Node::from_seq(&sc.args[i]),
                                    Node::from_seq(&sc.args[j]),
                                    cid,
                                );
                            }
                        }
                    }
                }
                SetComparisonKind::Exclusion => {}
            }
        }
        g
    }

    fn add_edge(&mut self, from: Node, to: Node, via: ConstraintId) {
        // Fig. 9 projection: predicate-level inclusion implies positionwise
        // role-level inclusion.
        if let (Node::Pair(a, b), Node::Pair(c, d)) = (&from, &to) {
            let (a, b, c, d) = (*a, *b, *c, *d);
            self.add_edge(Node::Role(a), Node::Role(c), via);
            self.add_edge(Node::Role(b), Node::Role(d), via);
        }
        self.note_node(&from);
        self.note_node(&to);
        self.edges.entry(from).or_default().push((to, via));
    }

    fn note_node(&mut self, n: &Node) {
        if !self.edges.contains_key(n) && !self.nodes.contains(n) {
            self.nodes.push(n.clone());
        }
    }

    /// All nodes mentioned by any edge.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.edges.keys().chain(self.nodes.iter().filter(|n| !self.edges.contains_key(n)))
    }

    /// Find a SetPath from `from` to `to`: the list of constraint ids along
    /// one witnessing chain, or `None` if `pop(from) ⊆ pop(to)` is not
    /// implied. A trivial query (`from == to`) returns `None`; reflexivity
    /// carries no constraint information.
    pub fn path(&self, from: &Node, to: &Node) -> Option<Vec<ConstraintId>> {
        if from == to {
            return None;
        }
        let mut prev: HashMap<Node, (Node, ConstraintId)> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from.clone());
        while let Some(n) = queue.pop_front() {
            if let Some(nexts) = self.edges.get(&n) {
                for (next, via) in nexts {
                    if next != from && !prev.contains_key(next) {
                        prev.insert(next.clone(), (n.clone(), *via));
                        if next == to {
                            // Reconstruct the witnessing constraint chain.
                            let mut chain = Vec::new();
                            let mut cur = to.clone();
                            while let Some((p, via)) = prev.get(&cur) {
                                chain.push(*via);
                                cur = p.clone();
                            }
                            chain.reverse();
                            chain.dedup();
                            return Some(chain);
                        }
                        queue.push_back(next.clone());
                    }
                }
            }
        }
        None
    }

    /// Whether a SetPath exists in either direction between `a` and `b`,
    /// returning the witnessing chain and its direction
    /// (`true` = `a ⊆ b`, `false` = `b ⊆ a`).
    pub fn path_either(&self, a: &Node, b: &Node) -> Option<(bool, Vec<ConstraintId>)> {
        if let Some(chain) = self.path(a, b) {
            return Some((true, chain));
        }
        self.path(b, a).map(|chain| (false, chain))
    }

    /// Whether `node` lies on a directed cycle (RIDL S2).
    pub fn on_cycle(&self, node: &Node) -> bool {
        let Some(nexts) = self.edges.get(node) else { return false };
        for (next, _) in nexts {
            if next == node || self.path(next, node).is_some() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RoleSeq, SchemaBuilder};

    /// Three facts f, g, h over A×B plus constraints wired by the caller.
    fn three_facts() -> (SchemaBuilder, [RoleId; 6]) {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let g = b.fact_type("g", a, bb).unwrap();
        let h = b.fact_type("h", a, bb).unwrap();
        let [f0, f1] = b.schema().fact_type(f).roles();
        let [g0, g1] = b.schema().fact_type(g).roles();
        let [h0, h1] = b.schema().fact_type(h).roles();
        (b, [f0, f1, g0, g1, h0, h1])
    }

    #[test]
    fn direct_subset_is_a_path() {
        let (mut b, [f0, _, g0, _, _, _]) = three_facts();
        let c = b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(g0)), Some(vec![c]));
        assert_eq!(g.path(&Node::Role(g0), &Node::Role(f0)), None);
    }

    #[test]
    fn equality_gives_paths_both_ways() {
        let (mut b, [f0, _, g0, _, _, _]) = three_facts();
        let c = b.equality([RoleSeq::single(f0), RoleSeq::single(g0)]).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(g0)), Some(vec![c]));
        assert_eq!(g.path(&Node::Role(g0), &Node::Role(f0)), Some(vec![c]));
    }

    #[test]
    fn chains_compose() {
        let (mut b, [f0, _, g0, _, h0, _]) = three_facts();
        let c1 = b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        let c2 = b.subset(RoleSeq::single(g0), RoleSeq::single(h0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(h0)), Some(vec![c1, c2]));
    }

    #[test]
    fn predicate_subset_projects_to_roles() {
        // Fig. 9: (f0,f1) ⊆ (g0,g1) implies f0 ⊆ g0 and f1 ⊆ g1.
        let (mut b, [f0, f1, g0, g1, _, _]) = three_facts();
        let c = b.subset(RoleSeq::pair(f0, f1), RoleSeq::pair(g0, g1)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Pair(f0, f1), &Node::Pair(g0, g1)), Some(vec![c]));
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(g0)), Some(vec![c]));
        assert_eq!(g.path(&Node::Role(f1), &Node::Role(g1)), Some(vec![c]));
        // No cross-position projection.
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(g1)), None);
    }

    #[test]
    fn role_subset_does_not_imply_predicate_subset() {
        let (mut b, [f0, f1, g0, g1, _, _]) = three_facts();
        b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        b.subset(RoleSeq::single(f1), RoleSeq::single(g1)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Pair(f0, f1), &Node::Pair(g0, g1)), None);
    }

    #[test]
    fn skip_excludes_a_constraint() {
        let (mut b, [f0, _, g0, _, _, _]) = three_facts();
        let c = b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, Some(c));
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(g0)), None);
    }

    #[test]
    fn path_either_reports_direction() {
        let (mut b, [f0, _, g0, _, _, _]) = three_facts();
        b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        let (forward, _) = g.path_either(&Node::Role(f0), &Node::Role(g0)).unwrap();
        assert!(forward);
        let (forward, _) = g.path_either(&Node::Role(g0), &Node::Role(f0)).unwrap();
        assert!(!forward);
    }

    #[test]
    fn cycle_detection() {
        let (mut b, [f0, _, g0, _, h0, _]) = three_facts();
        b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        b.subset(RoleSeq::single(g0), RoleSeq::single(h0)).unwrap();
        b.subset(RoleSeq::single(h0), RoleSeq::single(f0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        for r in [f0, g0, h0] {
            assert!(g.on_cycle(&Node::Role(r)));
        }
    }

    #[test]
    fn no_false_cycles() {
        let (mut b, [f0, _, g0, _, _, _]) = three_facts();
        b.subset(RoleSeq::single(f0), RoleSeq::single(g0)).unwrap();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert!(!g.on_cycle(&Node::Role(f0)));
        assert!(!g.on_cycle(&Node::Role(g0)));
    }

    #[test]
    fn self_path_is_none() {
        let (b, [f0, ..]) = three_facts();
        let s = b.finish();
        let g = SetPathGraph::build(&s, None);
        assert_eq!(g.path(&Node::Role(f0), &Node::Role(f0)), None);
    }
}
