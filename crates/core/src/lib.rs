//! # orm-core — unsatisfiability pattern detection for ORM schemas
//!
//! This crate is the primary contribution of the reproduced paper:
//! *Jarrar & Heymans, "Unsatisfiability Reasoning in ORM Conceptual
//! Schemes" (EDBT 2006)*. It implements:
//!
//! * the paper's **nine unsatisfiability patterns** (§2) as independent,
//!   composable checks ([`patterns`]);
//! * the **set-path** reasoning of Pattern 6, including the Fig. 9
//!   implications between set-comparison constraints ([`setpath`]);
//! * the **ring-constraint semantics** of Pattern 8 — an executable version
//!   of the Fig. 12 Euler diagram and a regenerated Table 1 ([`ring`]);
//! * Halpin's seven **formation rules** and the RIDL-A rules as lints, with
//!   the unsat-relevance classification of §3 ([`formation`], [`ridl`]);
//! * the **extension checks** sketched in §5, including unsatisfiability
//!   propagation ([`extensions`]);
//! * a configurable [`Validator`] reproducing DogmaModeler's per-pattern
//!   settings (§4, Fig. 15), with revision caching and an incremental mode
//!   for interactive modeling;
//! * all paper figures as reusable [`fixtures`].
//!
//! # Quick start
//!
//! ```
//! use orm_core::{validate, CheckCode};
//! use orm_model::SchemaBuilder;
//!
//! // Fig. 1 of the paper: a PhD student must be both a Student and an
//! // Employee, but those types are declared mutually exclusive.
//! let mut b = SchemaBuilder::new("university");
//! let person = b.entity_type("Person").unwrap();
//! let student = b.entity_type("Student").unwrap();
//! let employee = b.entity_type("Employee").unwrap();
//! let phd = b.entity_type("PhdStudent").unwrap();
//! b.subtype(student, person).unwrap();
//! b.subtype(employee, person).unwrap();
//! b.subtype(phd, student).unwrap();
//! b.subtype(phd, employee).unwrap();
//! b.exclusive_types([student, employee]).unwrap();
//! let schema = b.finish();
//!
//! let report = validate(&schema);
//! assert!(report.has_unsat());
//! assert_eq!(report.by_code(CheckCode::P2).count(), 1);
//! println!("{}", report.render(&schema));
//! ```
//!
//! # Soundness, not completeness
//!
//! A firing pattern *proves* the reported roles/types unpopulatable (the
//! cross-validation property tests in `tests/` check every flagged element
//! against the complete bounded model finder). The converse does not hold:
//! schemas can be unsatisfiable without any pattern firing — the paper shows
//! completeness is unattainable anyway, since full ORM constraint
//! satisfiability is undecidable. Pair the patterns with `orm-reasoner` or
//! `orm-dl` when completeness on a fragment is required; §4 of the paper
//! (and the `complete_vs_patterns` example) discusses exactly this
//! complementarity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod extensions;
pub mod fixtures;
pub mod formation;
pub mod patterns;
pub mod ridl;
pub mod ring;
pub mod setpath;
pub mod validator;

pub use diagnostics::{CheckCode, Finding, Report, Severity};
pub use patterns::{effective_value_cardinality, paper_patterns, Check, Trigger};
pub use validator::{validate, validate_all, EditHint, Validator, ValidatorSettings};
