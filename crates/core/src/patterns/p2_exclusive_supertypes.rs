//! Pattern 2 — *Exclusive constraint between types* (paper §2, Figs. 1, 3).
//!
//! An exclusive constraint forces the populations of the listed types to be
//! pairwise disjoint. Any common subtype of two of them is a subset of an
//! empty intersection, hence unpopulatable. The check intersects the
//! **reflexive** subtype closures, so it also catches an exclusion declared
//! between a type and its own (transitive) subtype — the subtype itself is
//! then the doomed member of the intersection.

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{Constraint, ConstraintKind, Element, ObjectTypeId, RoleId, Schema, SchemaIndex};
use std::collections::BTreeSet;

/// Pattern 2 check.
pub struct P2;

impl Check for P2 {
    fn code(&self) -> CheckCode {
        CheckCode::P2
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::ExclusiveTypes),
            Trigger::Subtyping,
            Trigger::Structure,
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::ExclusiveTypes(excl) = c else { continue };
            // Collect the doomed types across all pairs so one constraint
            // yields one finding, like the appendix algorithm's message
            // "all subtypes in <S> cannot be instantiated".
            let mut doomed: BTreeSet<ObjectTypeId> = BTreeSet::new();
            for (i, ti) in excl.types.iter().enumerate() {
                for tj in excl.types.iter().skip(i + 1) {
                    let si = idx.subs_refl(*ti);
                    let sj = idx.subs_refl(*tj);
                    doomed.extend(si.intersection(&sj).copied());
                }
            }
            if doomed.is_empty() {
                continue;
            }
            let unsat_roles: Vec<RoleId> =
                doomed.iter().flat_map(|t| idx.roles_of_type[t.index()].iter().copied()).collect();
            let names: Vec<&str> = doomed.iter().map(|t| schema.object_type(*t).name()).collect();
            out.push(Finding {
                code: CheckCode::P2,
                severity: Severity::Unsatisfiable,
                unsat_roles,
                joint_unsat_roles: Vec::new(),
                unsat_types: doomed.into_iter().collect(),
                culprits: vec![Element::Constraint(cid)],
                message: format!(
                    "the type(s) {} cannot be instantiated because of the exclusive \
                     constraint between {}",
                    names.join(", "),
                    excl.types
                        .iter()
                        .map(|t| schema.object_type(*t).name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P2.run(schema, &schema.index(), &mut out);
        out
    }

    /// Fig. 1: PhD student is a common subtype of the exclusive Student and
    /// Employee.
    #[test]
    fn fig1_flags_phd_student() {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![phd]);
        assert!(findings[0].message.contains("PhdStudent"));
    }

    /// Fig. 3: D <: B, D <: C with B ⊗ C.
    #[test]
    fn fig3_flags_d() {
        let mut b = SchemaBuilder::new("fig3");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        let d = b.entity_type("D").unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(d, bb).unwrap();
        b.subtype(d, c).unwrap();
        b.exclusive_types([bb, c]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![d]);
    }

    /// Indirect common subtypes are caught through the transitive closure.
    #[test]
    fn transitive_common_subtype_flagged() {
        let mut b = SchemaBuilder::new("s");
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let mid = b.entity_type("Mid").unwrap();
        let leaf = b.entity_type("Leaf").unwrap();
        b.subtype(mid, x).unwrap();
        b.subtype(mid, y).unwrap();
        b.subtype(leaf, mid).unwrap();
        b.exclusive_types([x, y]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![mid, leaf]);
    }

    /// Exclusion between a type and its own subtype dooms the subtype.
    #[test]
    fn exclusion_with_own_subtype() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        b.subtype(bb, a).unwrap();
        b.exclusive_types([a, bb]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![bb]);
    }

    /// Disjoint subtrees: nothing fires.
    #[test]
    fn disjoint_subtrees_pass() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        let d = b.entity_type("D").unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(d, bb).unwrap();
        b.exclusive_types([a, bb]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// A three-way exclusive constraint checks every pair.
    #[test]
    fn three_way_exclusion() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        let d = b.entity_type("D").unwrap();
        // D under B and C only; A unrelated.
        b.subtype(d, bb).unwrap();
        b.subtype(d, c).unwrap();
        b.exclusive_types([a, bb, c]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![d]);
    }

    /// Roles played by doomed subtypes are reported.
    #[test]
    fn roles_of_doomed_types_reported() {
        let mut b = SchemaBuilder::new("s");
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let d = b.entity_type("D").unwrap();
        b.subtype(d, x).unwrap();
        b.subtype(d, y).unwrap();
        b.exclusive_types([x, y]).unwrap();
        let f = b.fact_type("f", d, x).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings[0].unsat_roles, vec![s.fact_type(f).first()]);
    }
}
