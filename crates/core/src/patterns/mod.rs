//! The paper's nine unsatisfiability patterns (§2).
//!
//! Each pattern is a [`Check`]: a pure function from a schema (plus its
//! precomputed [`SchemaIndex`]) to a list of [`Finding`]s. A pattern firing
//! *proves* that the reported roles/types cannot be populated in any model
//! of the schema (soundness — property-tested against the bounded model
//! finder in `tests/`); the paper is explicit that the patterns are not
//! complete.

use crate::diagnostics::{CheckCode, Finding};
use orm_model::{ConstraintKind, ObjectTypeId, Schema, SchemaIndex};

pub mod p1_common_supertype;
pub mod p2_exclusive_supertypes;
pub mod p3_exclusion_mandatory;
pub mod p4_frequency_value;
pub mod p5_value_exclusion_frequency;
pub mod p6_set_comparison;
pub mod p7_uniqueness_frequency;
pub mod p8_ring;
pub mod p9_subtype_loop;

/// What kind of schema edit can affect a check's verdict; used by the
/// incremental validator to skip checks untouched by an edit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// A constraint of the given kind was added/removed.
    Constraint(ConstraintKind),
    /// A subtype link was added/removed.
    Subtyping,
    /// A value constraint changed.
    Values,
    /// An object or fact type was added.
    Structure,
}

/// A single validation check (pattern, formation rule, lint or extension).
pub trait Check: Send + Sync {
    /// Stable identifier.
    fn code(&self) -> CheckCode;

    /// Edits that can change this check's findings.
    fn triggers(&self) -> &'static [Trigger];

    /// Run the check, appending findings.
    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>);
}

/// The nine pattern checks, in paper order.
pub fn paper_patterns() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(p1_common_supertype::P1),
        Box::new(p2_exclusive_supertypes::P2),
        Box::new(p3_exclusion_mandatory::P3),
        Box::new(p4_frequency_value::P4),
        Box::new(p5_value_exclusion_frequency::P5),
        Box::new(p6_set_comparison::P6),
        Box::new(p7_uniqueness_frequency::P7),
        Box::new(p8_ring::P8),
        Box::new(p9_subtype_loop::P9),
    ]
}

/// The number of possible instances of `ty`, taking value constraints of
/// **supertypes** into account: a subtype population is included in every
/// supertype population, so the *intersection* of all value constraints
/// along the (reflexive) supertype chain bounds it. Returns the
/// intersection cardinality together with the object type holding the
/// tightest individual constraint (for diagnostics), or `None` when the
/// chain carries no value constraint at all.
///
/// The paper's Patterns 4 and 5 read the value constraint off one object
/// type; consulting the chain is a strict refinement that only adds
/// correct detections (see DESIGN.md §4, PERF notes). The intersection can
/// be *empty* — disjoint value constraints along one chain — which dooms
/// the type outright (extension check E1).
pub fn effective_value_cardinality(
    schema: &Schema,
    idx: &SchemaIndex,
    ty: ObjectTypeId,
) -> Option<(u64, ObjectTypeId)> {
    let mut merged: Option<orm_model::ValueConstraint> = None;
    let mut tightest: Option<(u64, ObjectTypeId)> = None;
    for t in idx.supers_refl(ty) {
        let Some(vc) = schema.object_type(t).value_constraint() else { continue };
        let card = vc.cardinality();
        tightest = Some(match tightest {
            Some(prev) if prev.0 <= card => prev,
            _ => (card, t),
        });
        merged = Some(match merged {
            None => vc.clone(),
            Some(acc) => acc.intersect(vc),
        });
    }
    match (merged, tightest) {
        (Some(vc), Some((_, holder))) => Some((vc.cardinality(), holder)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{SchemaBuilder, ValueConstraint};

    #[test]
    fn paper_patterns_are_nine_in_order() {
        let patterns = paper_patterns();
        assert_eq!(patterns.len(), 9);
        let codes: Vec<CheckCode> = patterns.iter().map(|p| p.code()).collect();
        assert_eq!(codes, CheckCode::PATTERNS.to_vec());
    }

    #[test]
    fn effective_cardinality_uses_own_constraint() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["x", "y"]))).unwrap();
        let s = b.finish();
        let idx = s.index();
        assert_eq!(effective_value_cardinality(&s, &idx, a), Some((2, a)));
    }

    #[test]
    fn effective_cardinality_inherits_from_supertype() {
        let mut b = SchemaBuilder::new("s");
        let sup = b.value_type("Sup", Some(ValueConstraint::enumeration(["x", "y", "z"]))).unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, sup).unwrap();
        let s = b.finish();
        let idx = s.index();
        assert_eq!(effective_value_cardinality(&s, &idx, sub), Some((3, sup)));
    }

    #[test]
    fn effective_cardinality_takes_tightest_bound() {
        let mut b = SchemaBuilder::new("s");
        let sup = b.value_type("Sup", Some(ValueConstraint::enumeration(["x", "y", "z"]))).unwrap();
        let sub = b.value_type("Sub", Some(ValueConstraint::enumeration(["x", "y"]))).unwrap();
        b.subtype(sub, sup).unwrap();
        let s = b.finish();
        let idx = s.index();
        assert_eq!(effective_value_cardinality(&s, &idx, sub), Some((2, sub)));
    }

    #[test]
    fn effective_cardinality_none_when_unbounded() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let s = b.finish();
        let idx = s.index();
        assert_eq!(effective_value_cardinality(&s, &idx, a), None);
    }
}
