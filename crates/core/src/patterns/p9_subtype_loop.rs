//! Pattern 9 — *Loops in subtypes* (paper §2, Fig. 13).
//!
//! ORM subtype populations are **strict** subsets of their supertype
//! populations (\[H01\]), so a loop in the subtype relation would make a
//! population a strict subset of itself. Every type on a cycle — i.e. with
//! `T ∈ T.Supers` — is unsatisfiable.
//!
//! One finding is emitted per strongly connected component, listing all
//! member types, which matches how a modeler perceives the mistake (one
//! loop, not N separate problems). The paper also notes there is *no*
//! analogous pattern for subset constraints between roles, whose semantics
//! are non-strict (see `ridl::S2`).

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{Element, ObjectTypeId, RoleId, Schema, SchemaIndex};
use std::collections::BTreeSet;

/// Pattern 9 check.
pub struct P9;

impl Check for P9 {
    fn code(&self) -> CheckCode {
        CheckCode::P9
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let mut reported: BTreeSet<ObjectTypeId> = BTreeSet::new();
        for (ty, _) in schema.object_types() {
            if reported.contains(&ty) || !idx.on_subtype_cycle(ty) {
                continue;
            }
            // The SCC of `ty`: cyclic types reaching each other both ways.
            let scc: BTreeSet<ObjectTypeId> =
                idx.supers(ty).iter().copied().filter(|o| idx.supers(*o).contains(&ty)).collect();
            debug_assert!(scc.contains(&ty));
            reported.extend(&scc);

            let culprits: Vec<Element> = schema
                .subtype_links()
                .filter(|l| scc.contains(&l.sub) && scc.contains(&l.sup))
                .map(|l| Element::Subtype(l.sub, l.sup))
                .collect();
            let unsat_roles: Vec<RoleId> =
                scc.iter().flat_map(|t| idx.roles_of_type[t.index()].iter().copied()).collect();
            let names: Vec<&str> = scc.iter().map(|t| schema.object_type(*t).name()).collect();
            out.push(Finding {
                code: CheckCode::P9,
                severity: Severity::Unsatisfiable,
                unsat_roles,
                joint_unsat_roles: Vec::new(),
                unsat_types: scc.iter().copied().collect(),
                culprits,
                message: format!(
                    "the subtypes {} form a loop in the subtype relation, so none of \
                     them can be satisfied",
                    names.join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P9.run(schema, &schema.index(), &mut out);
        out
    }

    /// Fig. 13: A <: B <: C <: A.
    #[test]
    fn fig13_three_cycle() {
        let mut b = SchemaBuilder::new("fig13");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, bb).unwrap();
        b.subtype(bb, c).unwrap();
        b.subtype(c, a).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1, "one finding per loop");
        assert_eq!(findings[0].unsat_types, vec![a, bb, c]);
        assert_eq!(findings[0].culprits.len(), 3);
    }

    /// Two disjoint cycles produce two findings.
    #[test]
    fn two_cycles_two_findings() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        let d = b.entity_type("D").unwrap();
        b.subtype(a, bb).unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(c, d).unwrap();
        b.subtype(d, c).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 2);
    }

    /// A DAG (the Fig. 1 diamond) has no loops.
    #[test]
    fn dag_passes() {
        let mut b = SchemaBuilder::new("s");
        let p = b.entity_type("P").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let z = b.entity_type("Z").unwrap();
        b.subtype(x, p).unwrap();
        b.subtype(y, p).unwrap();
        b.subtype(z, x).unwrap();
        b.subtype(z, y).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Types hanging off a cycle (but not on it) are not flagged by P9
    /// itself — propagation (E3) handles the fallout.
    #[test]
    fn non_cycle_members_not_flagged() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let leaf = b.entity_type("Leaf").unwrap();
        b.subtype(a, bb).unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(leaf, a).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![a, bb]);
    }

    /// Roles played by loop members are reported unsatisfiable.
    #[test]
    fn roles_of_loop_members_reported() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let x = b.entity_type("X").unwrap();
        b.subtype(a, bb).unwrap();
        b.subtype(bb, a).unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings[0].unsat_roles, vec![s.fact_type(f).first()]);
    }
}
