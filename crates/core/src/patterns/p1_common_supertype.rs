//! Pattern 1 — *Top common supertype* (paper §2, Fig. 2).
//!
//! ORM assumes object types to be mutually exclusive unless they share a
//! common supertype. A type with several direct supertypes is the
//! intersection of their populations; if those supertypes cannot overlap —
//! no common (reflexive) supertype — the intersection is necessarily empty.
//!
//! The intersection is taken over the **reflexive** supertype closures: a
//! direct supertype counts as its own ancestor. Without reflexivity the
//! check would wrongly fire on `T <: A, T <: B, B <: A` (where `A`'s closure
//! would be empty even though `T ⊆ B ⊆ A` is perfectly satisfiable), and
//! would wrongly pass Fig. 2. The paper's appendix algorithm leaves this
//! implicit; the population semantics force the reflexive reading.

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{Element, ObjectTypeId, Schema, SchemaIndex};
use std::collections::BTreeSet;

/// Pattern 1 check.
pub struct P1;

impl Check for P1 {
    fn code(&self) -> CheckCode {
        CheckCode::P1
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Subtyping, Trigger::Structure]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (ty, _) in schema.object_types() {
            let direct = idx.direct_supers(ty);
            if direct.len() < 2 {
                continue;
            }
            let mut common: Option<BTreeSet<ObjectTypeId>> = None;
            for sup in direct {
                let supers = idx.supers_refl(*sup);
                common = Some(match common {
                    None => supers,
                    Some(acc) => acc.intersection(&supers).copied().collect(),
                });
            }
            if common.is_some_and(|c| c.is_empty()) {
                let culprits: Vec<Element> =
                    direct.iter().map(|sup| Element::Subtype(ty, *sup)).collect();
                let super_names: Vec<&str> =
                    direct.iter().map(|s| schema.object_type(*s).name()).collect();
                out.push(Finding {
                    code: CheckCode::P1,
                    severity: Severity::Unsatisfiable,
                    unsat_roles: idx.roles_of_type[ty.index()].clone(),
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![ty],
                    culprits,
                    message: format!(
                        "the subtype `{}` cannot be satisfied as its supertypes ({}) do \
                         not have a top common supertype",
                        schema.object_type(ty).name(),
                        super_names.join(", ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P1.run(schema, &schema.index(), &mut out);
        out
    }

    /// The paper's Fig. 2: C <: A, C <: B with A, B unrelated tops.
    #[test]
    fn fig2_fires() {
        let mut b = SchemaBuilder::new("fig2");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(c, bb).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![c]);
        assert_eq!(findings[0].severity, Severity::Unsatisfiable);
        assert!(findings[0].message.contains('C'));
    }

    /// Fig. 1's diamond: supertypes share `Person`, so Pattern 1 stays
    /// silent (Pattern 2 handles the explicit exclusion).
    #[test]
    fn diamond_with_common_top_passes() {
        let mut b = SchemaBuilder::new("diamond");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// One supertype being an ancestor of the other counts as common:
    /// `T <: A, T <: B, B <: A` is satisfiable.
    #[test]
    fn ancestor_supertype_is_common() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let t = b.entity_type("T").unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(t, a).unwrap();
        b.subtype(t, bb).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    #[test]
    fn single_supertype_never_fires() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let t = b.entity_type("T").unwrap();
        b.subtype(t, a).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Three direct supertypes where only two share a top: still empty
    /// intersection overall.
    #[test]
    fn three_supertypes_partial_overlap_fires() {
        let mut b = SchemaBuilder::new("s");
        let root = b.entity_type("Root").unwrap();
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        let lone = b.entity_type("Lone").unwrap();
        let t = b.entity_type("T").unwrap();
        b.subtype(a, root).unwrap();
        b.subtype(c, root).unwrap();
        b.subtype(t, a).unwrap();
        b.subtype(t, c).unwrap();
        b.subtype(t, lone).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_types, vec![t]);
    }

    /// Roles played by the doomed subtype are reported unsatisfiable too.
    #[test]
    fn reports_roles_of_unsat_type() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(c, bb).unwrap();
        let f = b.fact_type("f", c, a).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings[0].unsat_roles, vec![s.fact_type(f).first()]);
    }
}
