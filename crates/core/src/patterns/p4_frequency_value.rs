//! Pattern 4 — *Frequency-Value* (paper §2, Fig. 5).
//!
//! A frequency constraint `FC(min..max)` on a single role `r` of fact type
//! `A r B` demands that every instance playing `r` occurs in at least `min`
//! tuples. Tuples of a predicate are distinct (set semantics), so those
//! `min` tuples need `min` **distinct** partners on the opposite role. If
//! the co-role player's value constraint admits fewer than `min` values,
//! `r` can never be populated.
//!
//! The cardinality is the *effective* one: value constraints on supertypes
//! of the co-player bound its population as well
//! (see [`super::effective_value_cardinality`]).

use super::{effective_value_cardinality, Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{Constraint, ConstraintKind, Element, Schema, SchemaIndex};

/// Pattern 4 check.
pub struct P4;

impl Check for P4 {
    fn code(&self) -> CheckCode {
        CheckCode::P4
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Frequency), Trigger::Values, Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            let [role] = fc.roles[..] else { continue };
            let co = schema.co_role(role);
            let co_player = schema.player(co);
            let Some((cardinality, vc_holder)) =
                effective_value_cardinality(schema, idx, co_player)
            else {
                continue;
            };
            if cardinality >= u64::from(fc.min) {
                continue;
            }
            out.push(Finding {
                code: CheckCode::P4,
                severity: Severity::Unsatisfiable,
                // The whole fact type dies with the constrained role.
                unsat_roles: vec![role, co],
                joint_unsat_roles: Vec::new(),
                unsat_types: vec![],
                culprits: vec![Element::Constraint(cid), Element::ObjectType(vc_holder)],
                message: format!(
                    "the role `{}` cannot be instantiated: {} requires {} distinct \
                     partners but the value constraint on `{}` admits only {} value(s)",
                    schema.role_label(role),
                    fc.notation(),
                    fc.min,
                    schema.object_type(vc_holder).name(),
                    cardinality
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{SchemaBuilder, ValueConstraint};

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P4.run(schema, &schema.index(), &mut out);
        out
    }

    /// Fig. 5: FC(3-5) on r1, value constraint {'x1','x2'} on B.
    #[test]
    fn fig5_fires() {
        let mut b = SchemaBuilder::new("fig5");
        let a = b.entity_type("A").unwrap();
        let bb = b.value_type("B", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let f = b.fact_type_full("f", (a, Some("r1")), (bb, Some("r2")), None).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 3, Some(5)).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r1, s.co_role(r1)]);
        assert!(findings[0].message.contains("FC(3-5)"));
    }

    /// Exactly enough values: FC(2-5) with two values is fine.
    #[test]
    fn boundary_equal_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.value_type("B", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 2, Some(5)).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// No value constraint → unbounded partners → no finding.
    #[test]
    fn unbounded_co_player_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 100, None).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// The value constraint on the constrained role's own player is
    /// irrelevant; only the co-role's player bounds the partners.
    #[test]
    fn own_player_value_constraint_irrelevant() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["a1"]))).unwrap();
        let bb = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 3, None).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// FC on the second role looks at the first role's player.
    #[test]
    fn second_role_frequency() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["a1", "a2"]))).unwrap();
        let bb = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let r2 = b.schema().fact_type(f).second();
        b.frequency([r2], 3, None).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r2));
    }

    /// Value constraint inherited from the co-player's supertype still
    /// bounds the partners.
    #[test]
    fn inherited_value_constraint_detected() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let sup = b.value_type("Sup", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, sup).unwrap();
        let f = b.fact_type("f", a, sub).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 3, None).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].culprits.contains(&Element::ObjectType(sup)));
    }

    /// Integer-range value constraints count like enumerations.
    #[test]
    fn int_range_cardinality() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.value_type("B", Some(ValueConstraint::IntRange { min: 1, max: 2 })).unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.frequency([r1], 3, None).unwrap();
        let s = b.finish();
        assert_eq!(run(&s).len(), 1);
    }

    /// Spanning frequency constraints are Pattern 7's concern.
    #[test]
    fn spanning_frequency_ignored() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.value_type("B", Some(ValueConstraint::enumeration(["x"]))).unwrap();
        let f = b.fact_type("f", a, bb).unwrap();
        let [r1, r2] = b.schema().fact_type(f).roles();
        b.frequency([r1, r2], 3, None).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }
}
