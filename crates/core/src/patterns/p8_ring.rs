//! Pattern 8 — *Ring constraints* (paper §2, Figs. 11-12, Table 1).
//!
//! A fact type whose (merged) ring-constraint kinds form an incompatible
//! combination — no non-empty relation can satisfy them all — can never be
//! populated. Compatibility is decided by [`crate::ring::table::compatible`];
//! the diagnostic names a *minimal* incompatible subset so the modeler sees
//! the actual clash (e.g. "acyclic + symmetric") rather than the whole list.

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use crate::ring::ctl::{RingCtl, RingInterrupt, Unbounded};
use crate::ring::table::{compatible_ctl, incompatible_culprit_ctl};
use orm_model::{ConstraintKind, Element, Schema, SchemaIndex};

/// Pattern 8 check.
pub struct P8;

/// Interruptible Pattern 8 scan: the compatibility decision and the
/// minimal-culprit search for every ring-constrained fact type run under
/// `ctl`, so a service session's budget/deadline/cancellation aborts the
/// bounded search with an interrupt — never a partial finding list.
/// [`P8::run`] is this scan with [`Unbounded`].
pub fn scan_ctl(
    schema: &Schema,
    idx: &SchemaIndex,
    ctl: &mut dyn RingCtl,
) -> Result<Vec<Finding>, RingInterrupt> {
    let mut out = Vec::new();
    for (fact, kinds, cids) in idx.ring_kinds_by_fact(schema) {
        ctl.on_step(1)?;
        if compatible_ctl(kinds, ctl)? {
            continue;
        }
        let culprit_kinds = incompatible_culprit_ctl(kinds, ctl)?
            .expect("incompatible combination has a minimal incompatible subset");
        let ft = schema.fact_type(fact);
        out.push(Finding {
            code: CheckCode::P8,
            severity: Severity::Unsatisfiable,
            unsat_roles: vec![ft.first(), ft.second()],
            joint_unsat_roles: Vec::new(),
            unsat_types: vec![],
            culprits: cids.iter().map(|c| Element::Constraint(*c)).collect(),
            message: format!(
                "the ring constraints {kinds} on `{}` cannot be satisfied by any \
                 non-empty relation (incompatible core: {culprit_kinds})",
                ft.name()
            ),
        });
    }
    Ok(out)
}

impl Check for P8 {
    fn code(&self) -> CheckCode {
        CheckCode::P8
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::Ring)]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let findings =
            scan_ctl(schema, idx, &mut Unbounded).expect("Unbounded control never interrupts");
        out.extend(findings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RingKind, SchemaBuilder};

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P8.run(schema, &schema.index(), &mut out);
        out
    }

    fn ring_schema(kinds: &[RingKind]) -> Schema {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("Woman").unwrap();
        let f = b
            .fact_type_full("sister_of", (w, Some("r1")), (w, Some("r2")), Some("is sister of"))
            .unwrap();
        b.ring(f, kinds.iter().copied()).unwrap();
        b.finish()
    }

    /// Fig. 11: a single irreflexive ring constraint is fine.
    #[test]
    fn fig11_irreflexive_passes() {
        let s = ring_schema(&[RingKind::Irreflexive]);
        assert!(run(&s).is_empty());
    }

    /// Fig. 12's flagship incompatibility: acyclic + symmetric.
    #[test]
    fn acyclic_symmetric_fires() {
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles.len(), 2);
        assert!(findings[0].message.contains("ac"));
        assert!(findings[0].message.contains("sym"));
    }

    /// The paper's example incompatible union {sym, it} ∪ {ans}.
    #[test]
    fn sym_it_ans_fires() {
        let s =
            ring_schema(&[RingKind::Symmetric, RingKind::Intransitive, RingKind::Antisymmetric]);
        assert_eq!(run(&s).len(), 1);
    }

    /// Compatible multi-kind combinations stay silent.
    #[test]
    fn compatible_combinations_pass() {
        for kinds in [
            vec![RingKind::Acyclic, RingKind::Intransitive],
            vec![RingKind::Symmetric, RingKind::Intransitive],
            vec![RingKind::Asymmetric, RingKind::Intransitive],
            vec![RingKind::Symmetric, RingKind::Irreflexive],
        ] {
            let s = ring_schema(&kinds);
            assert!(run(&s).is_empty(), "{kinds:?} wrongly flagged");
        }
    }

    /// Kinds split across several ring constraints on one fact type are
    /// merged before the compatibility check.
    #[test]
    fn kinds_merged_across_constraints() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("f", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        b.ring(f, [RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].culprits.len(), 2);
    }

    /// A pre-expired control interrupts the scan before any verdict.
    #[test]
    fn pre_expired_control_interrupts_without_findings() {
        use crate::ring::ctl::{RingInterrupt, StepBudget};
        let s = ring_schema(&[RingKind::Acyclic, RingKind::Symmetric]);
        let mut zero = StepBudget::new(0);
        assert_eq!(scan_ctl(&s, &s.index(), &mut zero), Err(RingInterrupt::BudgetExhausted));
    }

    /// With budget to spare, the interruptible scan matches the legacy run.
    #[test]
    fn budgeted_scan_matches_unbounded_run() {
        use crate::ring::ctl::StepBudget;
        let s =
            ring_schema(&[RingKind::Symmetric, RingKind::Intransitive, RingKind::Antisymmetric]);
        let mut plenty = StepBudget::new(100_000);
        let scanned = scan_ctl(&s, &s.index(), &mut plenty).unwrap();
        assert_eq!(scanned, run(&s));
        assert!(plenty.remaining() < 100_000, "scan must charge the control");
    }

    /// Different fact types do not interfere.
    #[test]
    fn separate_facts_independent() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("f", w, w).unwrap();
        let g = b.fact_type("g", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        b.ring(g, [RingKind::Symmetric]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }
}
