//! Pattern 3 — *Exclusion-Mandatory* (paper §2, Fig. 4).
//!
//! Let `R` be the roles of an exclusion constraint over single roles, and let
//! `Ri ∈ R` carry a simple mandatory constraint. Every instance of
//! `player(Ri)` plays `Ri`, and by exclusion it then cannot play any other
//! role in `R`. So every `Rj ∈ R` whose player equals `player(Ri)` — or is
//! one of its subtypes, since subtypes inherit roles and constraints
//! (Fig. 4c) — can never be played.
//!
//! When the conflicting `Rj` is itself mandatory, no instance of the more
//! specific player can exist at all: the object type joins the
//! unsatisfiable set (Fig. 4b).

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{
    Constraint, ConstraintKind, Element, ObjectTypeId, RoleId, Schema, SchemaIndex,
    SetComparisonKind,
};
use std::collections::BTreeSet;

/// Pattern 3 check.
pub struct P3;

impl Check for P3 {
    fn code(&self) -> CheckCode {
        CheckCode::P3
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::SetComparison),
            Trigger::Constraint(ConstraintKind::Mandatory),
            Trigger::Subtyping,
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion || !sc.over_single_roles() {
                continue;
            }
            let roles: Vec<RoleId> = sc.args.iter().map(|seq| seq.roles()[0]).collect();

            let mut unsat_roles: BTreeSet<RoleId> = BTreeSet::new();
            let mut unsat_types: BTreeSet<ObjectTypeId> = BTreeSet::new();
            let mut culprits: Vec<Element> = vec![Element::Constraint(cid)];

            for &ri in &roles {
                let Some(mand_i) = idx.mandatory_on(ri) else { continue };
                let pi = schema.player(ri);
                for &rj in &roles {
                    if ri == rj {
                        continue;
                    }
                    let pj = schema.player(rj);
                    // player(Rj) = player(Ri) or player(Rj) ∈ Subs(player(Ri)).
                    if pj == pi || idx.subs(pi).contains(&pj) {
                        unsat_roles.insert(rj);
                        let mand_elem = Element::Constraint(mand_i);
                        if !culprits.contains(&mand_elem) {
                            culprits.push(mand_elem);
                        }
                        // Fig. 4b: a second mandatory constraint on the
                        // conflicting role dooms the (more specific) player.
                        // Only with *identical* players does Ri itself die
                        // too — when pj is a proper subtype, instances of
                        // pi \ pj can still play Ri.
                        if idx.mandatory_on(rj).is_some() {
                            unsat_types.insert(pj);
                            if pj == pi {
                                unsat_roles.insert(ri);
                            }
                        }
                    }
                }
            }

            if unsat_roles.is_empty() {
                continue;
            }
            // Roles played by a doomed type are doomed as well.
            for t in &unsat_types {
                unsat_roles.extend(idx.roles_of_type[t.index()].iter().copied());
            }
            let role_names: Vec<&str> = unsat_roles.iter().map(|r| schema.role_label(*r)).collect();
            out.push(Finding {
                code: CheckCode::P3,
                severity: Severity::Unsatisfiable,
                unsat_roles: unsat_roles.into_iter().collect(),
                joint_unsat_roles: Vec::new(),
                unsat_types: unsat_types.into_iter().collect(),
                culprits,
                message: format!(
                    "the role(s) {} cannot be populated: a mandatory role in the \
                     exclusion constraint forces every instance of its player away \
                     from them",
                    role_names.join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P3.run(schema, &schema.index(), &mut out);
        out
    }

    /// Fig. 4a: mandatory r1, exclusion {r1, r3}, both played by A.
    /// Only r3 is doomed.
    #[test]
    fn fig4a() {
        let mut b = SchemaBuilder::new("fig4a");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("B").unwrap();
        let y = b.entity_type("C").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r3]);
        assert!(findings[0].unsat_types.is_empty());
    }

    /// Fig. 4b: both r1 and r3 mandatory → both doomed, and A itself.
    #[test]
    fn fig4b() {
        let mut b = SchemaBuilder::new("fig4b");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("B").unwrap();
        let y = b.entity_type("C").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.mandatory(r3).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r1, r3]);
        assert_eq!(findings[0].unsat_types, vec![a]);
    }

    /// Fig. 4c: B <: A plays r5; mandatory r1 on A; exclusion {r1, r3, r5}.
    /// r3 (player A) and r5 (player B, inheriting A's constraints) die.
    #[test]
    fn fig4c() {
        let mut b = SchemaBuilder::new("fig4c");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        b.subtype(bb, a).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (x, Some("r4")), None).unwrap();
        let f3 = b.fact_type_full("f3", (bb, Some("r5")), (x, Some("r6")), None).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3, r5]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r3, r5]);
        assert!(findings[0].unsat_types.is_empty());
    }

    /// Exclusion across unrelated players is implied by implicit type
    /// exclusion but harms nothing: no finding.
    #[test]
    fn unrelated_players_pass() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// The inverted subtype direction (mandatory on the subtype's role,
    /// other role on the supertype) must NOT fire — this is the Fig. 14
    /// situation where the supertype instance can avoid the subtype.
    #[test]
    fn mandatory_on_subtype_role_does_not_doom_supertype_role() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(c, a).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type_full("f1", (c, Some("r3")), (x, Some("r4")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r5")), (x, Some("r6")), None).unwrap();
        let r3 = b.schema().fact_type(f1).first();
        let r5 = b.schema().fact_type(f2).first();
        b.mandatory(r3).unwrap();
        b.exclusion_roles([r3, r5]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// No mandatory role → no conflict.
    #[test]
    fn exclusion_without_mandatory_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// A disjunctive mandatory over the excluded roles is the classic
    /// "exactly one" idiom and satisfiable — must not fire.
    #[test]
    fn disjunctive_mandatory_does_not_fire() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.disjunctive_mandatory([r1, r3]).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Exclusion between whole predicates is Pattern 6's business, not P3's.
    #[test]
    fn predicate_exclusion_ignored() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let [f10, f11] = b.schema().fact_type(f1).roles();
        let [f20, f21] = b.schema().fact_type(f2).roles();
        b.mandatory(f10).unwrap();
        b.exclusion([orm_model::RoleSeq::pair(f10, f11), orm_model::RoleSeq::pair(f20, f21)])
            .unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }
}
