//! Pattern 6 — *Set-comparison constraints* (paper §2, Figs. 8 and 9).
//!
//! An exclusion constraint contradicts any direct or implied *SetPath*
//! (chain of subset/equality constraints, including the Fig. 9 projections)
//! between its arguments: `pop(X) ⊆ pop(Y)` together with
//! `pop(X) ∩ pop(Y) = ∅` forces `pop(X) = ∅`.
//!
//! * For an exclusion between whole predicates, the SetPath is sought
//!   between the predicates.
//! * For an exclusion between single roles, it is sought between the roles
//!   *or* between their predicates (an exclusion between roles implies an
//!   exclusion between their predicates — Fig. 9).
//!
//! The ⊆-smaller side is provably empty; since the population of a role is
//! the projection of its fact table, the whole fact type of that side dies
//! (the paper: "the two predicates cannot be populated"). With an equality
//! path both sides die.

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use crate::setpath::{Node, SetPathGraph};
use orm_model::{
    Constraint, ConstraintKind, Element, RoleId, RoleSeq, Schema, SchemaIndex, SetComparisonKind,
};
use std::collections::BTreeSet;

/// Pattern 6 check.
pub struct P6;

impl Check for P6 {
    fn code(&self) -> CheckCode {
        CheckCode::P6
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let graph = SetPathGraph::build(schema, None);
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion {
                continue;
            }
            for (i, a) in sc.args.iter().enumerate() {
                for b in sc.args.iter().skip(i + 1) {
                    check_pair(schema, &graph, cid, a, b, out);
                }
            }
        }
    }
}

fn check_pair(
    schema: &Schema,
    graph: &SetPathGraph,
    exclusion: orm_model::ConstraintId,
    a: &RoleSeq,
    b: &RoleSeq,
    out: &mut Vec<Finding>,
) {
    let na = Node::from_seq(a);
    let nb = Node::from_seq(b);

    // SetPath between the arguments themselves.
    let mut hit =
        graph.path_either(&na, &nb).map(|(fwd, chain)| (fwd, chain, na.clone(), nb.clone()));

    // For single roles: also between their predicates (in fact order).
    if hit.is_none() && a.is_single() && b.is_single() {
        let pa = predicate_node(schema, a.roles()[0]);
        let pb = predicate_node(schema, b.roles()[0]);
        hit = graph.path_either(&pa, &pb).map(|(fwd, chain)| (fwd, chain, pa, pb));
    }

    let Some((forward, chain, from, to)) = hit else { return };
    let (sub_node, _sup_node) = if forward { (from, to) } else { (to, from) };

    // Does the chain also run backwards (equality somewhere)? Then both
    // sides are empty.
    let both = graph
        .path(
            &if forward { nb.clone() } else { na.clone() },
            &if forward { na.clone() } else { nb.clone() },
        )
        .is_some();

    let mut dead: BTreeSet<RoleId> = BTreeSet::new();
    for r in sub_node.roles() {
        extend_with_fact_roles(schema, r, &mut dead);
    }
    if both {
        for seq in [a, b] {
            for r in seq.roles() {
                extend_with_fact_roles(schema, *r, &mut dead);
            }
        }
    }

    let mut culprits: Vec<Element> = vec![Element::Constraint(exclusion)];
    culprits.extend(chain.iter().map(|c| Element::Constraint(*c)));

    let names: Vec<&str> = dead.iter().map(|r| schema.role_label(*r)).collect();
    out.push(Finding {
        code: CheckCode::P6,
        severity: Severity::Unsatisfiable,
        unsat_roles: dead.into_iter().collect(),
        joint_unsat_roles: Vec::new(),
        unsat_types: vec![],
        culprits,
        message: format!(
            "the exclusion constraint between {} and {} contradicts the subset/equality \
             constraint path between them; the role(s) {} cannot be populated",
            schema.seq_label(a),
            schema.seq_label(b),
            names.join(", ")
        ),
    });
}

/// Both roles of `role`'s fact type: an empty role projection means an empty
/// fact table, killing the co-role too.
fn extend_with_fact_roles(schema: &Schema, role: RoleId, into: &mut BTreeSet<RoleId>) {
    let fact = schema.fact_type(schema.role(role).fact_type());
    into.insert(fact.first());
    into.insert(fact.second());
}

fn predicate_node(schema: &Schema, role: RoleId) -> Node {
    let fact = schema.fact_type(schema.role(role).fact_type());
    Node::Pair(fact.first(), fact.second())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P6.run(schema, &schema.index(), &mut out);
        out
    }

    /// Two facts over A×B with labelled roles.
    fn two_facts() -> (SchemaBuilder, [RoleId; 4]) {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (bb, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (bb, Some("r4")), None).unwrap();
        let [r1, r2] = b.schema().fact_type(f1).roles();
        let [r3, r4] = b.schema().fact_type(f2).roles();
        (b, [r1, r2, r3, r4])
    }

    /// Fig. 8: exclusion between r1 and r3 plus subset (r1,r2) ⊆ (r3,r4).
    #[test]
    fn fig8_fires() {
        let (mut b, [r1, r2, r3, r4]) = two_facts();
        b.exclusion_roles([r1, r3]).unwrap();
        b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        // The subset's sub side (fact f1) is provably dead.
        assert_eq!(findings[0].unsat_roles, vec![r1, r2]);
        assert_eq!(findings[0].culprits.len(), 2);
    }

    /// Exclusion + subset between the same single roles.
    #[test]
    fn role_level_subset_conflicts() {
        let (mut b, [r1, _, r3, _]) = two_facts();
        b.exclusion_roles([r1, r3]).unwrap();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r1));
    }

    /// Subset in the opposite direction still conflicts (the other side
    /// dies).
    #[test]
    fn reverse_subset_conflicts() {
        let (mut b, [r1, _, r3, r4]) = two_facts();
        b.exclusion_roles([r1, r3]).unwrap();
        b.subset(RoleSeq::single(r3), RoleSeq::single(r1)).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r3));
        assert!(findings[0].unsat_roles.contains(&r4));
    }

    /// Equality between excluded predicates kills both facts.
    #[test]
    fn equality_kills_both_sides() {
        let (mut b, [r1, r2, r3, r4]) = two_facts();
        b.exclusion([RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)]).unwrap();
        b.equality([RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r1, r2, r3, r4]);
    }

    /// An implied (transitive) path is found, with the full chain reported.
    #[test]
    fn implied_path_detected() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let f3 = b.fact_type("f3", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        let c1 = b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let c2 = b.subset(RoleSeq::single(r3), RoleSeq::single(r5)).unwrap();
        let e = b.exclusion_roles([r1, r5]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].culprits,
            vec![Element::Constraint(e), Element::Constraint(c1), Element::Constraint(c2)]
        );
    }

    /// Fig. 9 projection: a predicate-level subset implies role-level
    /// subsets, contradicting a role-level exclusion.
    #[test]
    fn projection_from_predicate_subset() {
        let (mut b, [r1, r2, r3, r4]) = two_facts();
        b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)).unwrap();
        b.exclusion_roles([r2, r4]).unwrap();
        let s = b.finish();
        // r2 ⊆ r4 via projection; exclusion {r2, r4} → f1 dies.
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].unsat_roles.contains(&r2));
    }

    /// Role-level subsets do NOT imply predicate-level subsets: exclusion
    /// between predicates stays satisfiable.
    #[test]
    fn no_upward_projection() {
        let (mut b, [r1, r2, r3, r4]) = two_facts();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        b.subset(RoleSeq::single(r2), RoleSeq::single(r4)).unwrap();
        b.exclusion([RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Unrelated exclusion and subset constraints: silence.
    #[test]
    fn unrelated_constraints_pass() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let f3 = b.fact_type("f3", a, x).unwrap();
        let f4 = b.fact_type("f4", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        let r7 = b.schema().fact_type(f4).first();
        b.exclusion_roles([r1, r3]).unwrap();
        b.subset(RoleSeq::single(r5), RoleSeq::single(r7)).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Cross-position subset ((r1,r2) ⊆ (r4,r3)) with exclusion between r1
    /// and r3: positions do not align, no contradiction.
    #[test]
    fn cross_orientation_no_false_positive() {
        let (mut b, [r1, r2, r3, r4]) = two_facts();
        b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r4, r3)).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }
}
