//! Pattern 7 — *Uniqueness-Frequency* (paper §2, Fig. 10).
//!
//! A uniqueness constraint over a role sequence says each instance
//! combination occurs at most once; a frequency constraint `FC(min..max)`
//! with `min > 1` over the same (or a larger) sequence says every occurring
//! combination occurs at least `min` times. Together nothing can occur at
//! all.
//!
//! The paper's related discussion (§3, formation rule 2) notes that a
//! predicate is implicitly spanned by a uniqueness constraint — predicates
//! are sets — so a *spanning* frequency constraint with `min > 1` is
//! unsatisfiable even without an explicit uniqueness constraint; this check
//! covers that case too. `FC(1-max)` is merely redundant (formation rule 3
//! loosened, as §3 explains) and is left to the formation-rule lints.

use super::{Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{Constraint, ConstraintKind, Element, Schema, SchemaIndex};

/// Pattern 7 check.
pub struct P7;

impl Check for P7 {
    fn code(&self) -> CheckCode {
        CheckCode::P7
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::Frequency),
            Trigger::Constraint(ConstraintKind::Uniqueness),
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::Frequency(fc) = c else { continue };
            if fc.min <= 1 {
                continue;
            }
            let spans_fact = fc.roles.len() == 2;
            let ucs = idx.uniqueness_within(&fc.roles);
            if !spans_fact && ucs.is_empty() {
                continue;
            }
            let mut culprits = vec![Element::Constraint(cid)];
            culprits.extend(ucs.iter().map(|u| Element::Constraint(*u)));
            let fact = schema.fact_type(schema.role(fc.roles[0]).fact_type());
            let reason = if ucs.is_empty() {
                "the implicit spanning uniqueness of set semantics".to_owned()
            } else {
                "a uniqueness constraint on the same roles".to_owned()
            };
            out.push(Finding {
                code: CheckCode::P7,
                severity: Severity::Unsatisfiable,
                unsat_roles: vec![fact.first(), fact.second()],
                joint_unsat_roles: Vec::new(),
                unsat_types: vec![],
                culprits,
                message: format!(
                    "the frequency constraint {} on {} cannot be satisfied: it \
                     conflicts with {}",
                    fc.notation(),
                    schema.seq_label(&orm_model::RoleSeq(fc.roles.clone())),
                    reason
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RoleId, SchemaBuilder};

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P7.run(schema, &schema.index(), &mut out);
        out
    }

    fn one_fact() -> (SchemaBuilder, [RoleId; 2]) {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let f = b.fact_type_full("f", (a, Some("r1")), (bb, Some("r2")), None).unwrap();
        let roles = b.schema().fact_type(f).roles();
        (b, roles)
    }

    /// Fig. 10: UC on r1 + FC(2-5) on r1.
    #[test]
    fn fig10_fires() {
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r1]).unwrap();
        b.frequency([r1], 2, Some(5)).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r1, r2]);
        assert!(findings[0].message.contains("FC(2-5)"));
        assert_eq!(findings[0].culprits.len(), 2);
    }

    /// FC(1-5) + UC is redundant but satisfiable (§3's loosening of
    /// formation rule 3).
    #[test]
    fn fc_min_one_passes() {
        let (mut b, [r1, _]) = one_fact();
        b.unique([r1]).unwrap();
        b.frequency([r1], 1, Some(5)).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// FC(min>1) without any uniqueness on that role: satisfiable.
    #[test]
    fn fc_without_uc_passes() {
        let (mut b, [r1, _]) = one_fact();
        b.frequency([r1], 3, Some(5)).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// UC on the *other* role does not conflict.
    #[test]
    fn uc_on_other_role_passes() {
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r2]).unwrap();
        b.frequency([r1], 2, None).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// A spanning UC does not conflict with a single-role FC: an instance
    /// can still play r1 twice with different partners.
    #[test]
    fn spanning_uc_with_single_role_fc_passes() {
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r1, r2]).unwrap();
        b.frequency([r1], 2, None).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// A spanning FC with min > 1 is unsatisfiable by set semantics alone
    /// (formation rule 2's unsat case).
    #[test]
    fn spanning_fc_min_two_fires() {
        let (mut b, [r1, r2]) = one_fact();
        b.frequency([r1, r2], 2, None).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].unsat_roles, vec![r1, r2]);
        assert!(findings[0].message.contains("implicit spanning uniqueness"));
    }

    /// A single-role UC inside a spanning FC also conflicts (the UC bounds
    /// the projection, the FC demands repetition).
    #[test]
    fn uc_within_spanning_fc_fires() {
        let (mut b, [r1, r2]) = one_fact();
        b.unique([r1]).unwrap();
        b.frequency([r1, r2], 2, None).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        // Both the implicit-spanning argument and the explicit UC apply;
        // the explicit UC is reported as a culprit.
        assert_eq!(findings[0].culprits.len(), 2);
    }
}
