//! Pattern 5 — *Value-Exclusion-Frequency* (paper §2, Figs. 6 and 7).
//!
//! For an exclusion constraint over single roles `R = {R1..Rn}` all played
//! by one object type `T`: populating `Ri` at all requires at least `fi`
//! distinct instances of `T` in `Ri`'s column, where `fi` is the minimum of
//! the frequency constraint on the *inverse* role `Si` (1 when absent) —
//! one tuple of the fact needs an `Si`-player, and that player must occur
//! `fi` times with distinct `Ri`-side partners. The exclusion makes the
//! columns pairwise disjoint, so populating *all* roles needs
//! `f1 + … + fn` distinct values. If `T`'s value constraint admits fewer,
//! some role in `R` must stay empty — a strong-satisfiability failure.
//!
//! Fig. 7 is the special case with all `fi = 1`: `n` mutually exclusive
//! roles over a type with fewer than `n` possible values.
//!
//! Going slightly beyond the paper's formalization (which requires a single
//! common player `T`), the check also sums against any *common supertype*
//! of the players, because all columns live inside that supertype's
//! value-bounded population too.

use super::{effective_value_cardinality, Check, Trigger};
use crate::diagnostics::{CheckCode, Finding, Severity};
use orm_model::{
    Constraint, ConstraintKind, Element, ObjectTypeId, RoleId, Schema, SchemaIndex,
    SetComparisonKind,
};
use std::collections::BTreeSet;

/// Pattern 5 check.
pub struct P5;

impl Check for P5 {
    fn code(&self) -> CheckCode {
        CheckCode::P5
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[
            Trigger::Constraint(ConstraintKind::SetComparison),
            Trigger::Constraint(ConstraintKind::Frequency),
            Trigger::Values,
            Trigger::Subtyping,
        ]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion || !sc.over_single_roles() {
                continue;
            }
            let roles: Vec<RoleId> = sc.args.iter().map(|seq| seq.roles()[0]).collect();

            // Common (reflexive) supertypes of all players; the paper's
            // formalization is the special case where the players coincide.
            let mut common: Option<BTreeSet<ObjectTypeId>> = None;
            for &r in &roles {
                let supers = idx.supers_refl(schema.player(r));
                common = Some(match common {
                    None => supers,
                    Some(acc) => acc.intersection(&supers).copied().collect(),
                });
            }
            let common = common.unwrap_or_default();
            if common.is_empty() {
                continue;
            }

            // Required distinct values: Σ fi with fi = min FC on the inverse
            // role Si (1 if absent).
            let mut required: u64 = 0;
            let mut culprits: Vec<Element> = vec![Element::Constraint(cid)];
            for &r in &roles {
                let inverse = schema.co_role(r);
                let (fi, fc_id) = idx.min_frequency_of_role(inverse);
                required += u64::from(fi);
                if let Some(fc_id) = fc_id {
                    culprits.push(Element::Constraint(fc_id));
                }
            }

            // The tightest bound among the common supertypes decides.
            let mut bound: Option<(u64, ObjectTypeId)> = None;
            for t in common {
                if let Some((card, holder)) = effective_value_cardinality(schema, idx, t) {
                    bound = Some(match bound {
                        Some((b, _)) if b <= card => bound.unwrap(),
                        _ => (card, holder),
                    });
                }
            }
            let Some((cardinality, vc_holder)) = bound else { continue };
            if cardinality >= required {
                continue;
            }
            culprits.push(Element::ObjectType(vc_holder));
            let role_names: Vec<&str> = roles.iter().map(|r| schema.role_label(*r)).collect();
            out.push(Finding {
                code: CheckCode::P5,
                severity: Severity::Unsatisfiable,
                // The paper: "SOME roles in R cannot be satisfied" — the
                // contradiction is joint, not per-role: any |R|-1 of the
                // roles may well be populatable together.
                unsat_roles: Vec::new(),
                joint_unsat_roles: roles,
                unsat_types: vec![],
                culprits,
                message: format!(
                    "the roles {} cannot all be populated: the exclusion constraint \
                     needs {} distinct values of `{}` but its value constraint admits \
                     only {}",
                    role_names.join(", "),
                    required,
                    schema.object_type(vc_holder).name(),
                    cardinality
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{SchemaBuilder, ValueConstraint};

    fn run(schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        P5.run(schema, &schema.index(), &mut out);
        out
    }

    /// Fig. 6: A has 2 values; exclusion {r1, r3}; FC(2-) on r1's inverse.
    /// Required 2 + 1 = 3 > 2.
    #[test]
    fn fig6_fires() {
        let mut b = SchemaBuilder::new("fig6");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
        let x = b.entity_type("B").unwrap();
        let y = b.entity_type("C").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r2 = b.schema().fact_type(f1).second();
        let r3 = b.schema().fact_type(f2).first();
        b.frequency([r2], 2, None).unwrap(); // FC on the inverse role of r1
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].joint_unsat_roles, vec![r1, r3]);
        assert!(findings[0].unsat_roles.is_empty());
        assert!(findings[0].message.contains("3 distinct values"));
    }

    /// Fig. 6 without the frequency constraint: 1 + 1 = 2 ≤ 2 values — the
    /// paper stresses that all three constraint kinds are needed.
    #[test]
    fn fig6_without_frequency_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
        let x = b.entity_type("B").unwrap();
        let y = b.entity_type("C").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Fig. 6 without the value constraint: unbounded values, no finding.
    #[test]
    fn fig6_without_value_constraint_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("B").unwrap();
        let y = b.entity_type("C").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r2 = b.schema().fact_type(f1).second();
        let r3 = b.schema().fact_type(f2).first();
        b.frequency([r2], 2, None).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Fig. 7: three mutually exclusive roles over a 2-value type, no
    /// frequency constraints (all fi = 1): 3 > 2.
    #[test]
    fn fig7_fires() {
        let mut b = SchemaBuilder::new("fig7");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
        let f2 = b.fact_type_full("f2", (a, Some("r3")), (x, Some("r4")), None).unwrap();
        let f3 = b.fact_type_full("f3", (a, Some("r5")), (x, Some("r6")), None).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        b.exclusion_roles([r1, r3, r5]).unwrap();
        let s = b.finish();
        let findings = run(&s);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].joint_unsat_roles, vec![r1, r3, r5]);
    }

    /// Two exclusive roles over a 2-value type: exactly enough.
    #[test]
    fn boundary_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Players that are different subtypes of a value-bounded supertype are
    /// still caught through the common-supertype refinement.
    #[test]
    fn common_supertype_bound_detected() {
        let mut b = SchemaBuilder::new("s");
        let sup = b.value_type("Sup", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
        let p = b.entity_type("P").unwrap();
        let q = b.entity_type("Q").unwrap();
        let rr = b.entity_type("R").unwrap();
        b.subtype(p, sup).unwrap();
        b.subtype(q, sup).unwrap();
        b.subtype(rr, sup).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", p, x).unwrap();
        let f2 = b.fact_type("f2", q, x).unwrap();
        let f3 = b.fact_type("f3", rr, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        b.exclusion_roles([r1, r3, r5]).unwrap();
        let s = b.finish();
        assert_eq!(run(&s).len(), 1);
    }

    /// Unrelated players: no common bound, nothing to sum against.
    #[test]
    fn unrelated_players_pass() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1"]))).unwrap();
        let c = b.value_type("C", Some(ValueConstraint::enumeration(["w1"]))).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run(&s).is_empty());
    }

    /// Several frequency constraints on one inverse role: the strictest
    /// minimum is the binding requirement.
    #[test]
    fn strictest_frequency_used() {
        let mut b = SchemaBuilder::new("s");
        let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2", "v3"]))).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r2 = b.schema().fact_type(f1).second();
        let r3 = b.schema().fact_type(f2).first();
        b.frequency([r2], 2, None).unwrap();
        b.frequency([r2], 3, None).unwrap(); // strictest: 3, so 3 + 1 > 3
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert_eq!(run(&s).len(), 1);
    }
}
