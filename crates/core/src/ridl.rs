//! RIDL-A rules from the RIDL* workbench \[DMV\] (paper §3).
//!
//! The paper examines RIDL-A's *Validity Analysis* (V1–V6) and *Set
//! Constraint Analysis* (S1–S4) and concludes that only S4 can detect
//! unsatisfiability. The original technical report is not publicly
//! available, so V1–V3 here are representative reconstructions of the kind
//! of well-formedness check the paper describes as "not relevant for
//! unsatisfiability"; S1–S4 follow the paper's own statements of the rules.

use crate::diagnostics::{CheckCode, Finding, Severity};
use crate::patterns::{Check, Trigger};
use crate::setpath::{Node, SetPathGraph};
use orm_model::{
    Constraint, ConstraintKind, Element, ObjectTypeKind, RoleId, Schema, SchemaIndex,
    SetComparisonKind,
};
use std::collections::BTreeSet;

/// V1 (reconstruction): an object type that plays no role, has no subtype
/// connection and is never constrained is dead weight in the schema.
pub struct V1;

impl Check for V1 {
    fn code(&self) -> CheckCode {
        CheckCode::V1
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Structure, Trigger::Subtyping]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let mut constrained: BTreeSet<orm_model::ObjectTypeId> = BTreeSet::new();
        for (_, c) in schema.constraints() {
            constrained.extend(c.mentioned_types());
        }
        for (ty, ot) in schema.object_types() {
            let isolated = idx.roles_of_type[ty.index()].is_empty()
                && idx.direct_supers(ty).is_empty()
                && idx.subs_direct[ty.index()].is_empty()
                && !constrained.contains(&ty);
            if isolated {
                out.push(Finding {
                    code: CheckCode::V1,
                    severity: Severity::Info,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::ObjectType(ty)],
                    message: format!(
                        "object type `{}` plays no role and is not connected to the \
                         rest of the schema",
                        ot.name()
                    ),
                });
            }
        }
    }
}

/// V2 (reconstruction): every fact type should carry an internal uniqueness
/// constraint (elementary-fact quality check in NIAM/ORM).
pub struct V2;

impl Check for V2 {
    fn code(&self) -> CheckCode {
        CheckCode::V2
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Structure, Trigger::Constraint(ConstraintKind::Uniqueness)]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (fid, ft) in schema.fact_types() {
            let has_uc = idx
                .uniqueness
                .iter()
                .any(|(_, u)| u.roles.iter().any(|r| schema.role(*r).fact_type() == fid));
            if !has_uc {
                out.push(Finding {
                    code: CheckCode::V2,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::FactType(fid)],
                    message: format!(
                        "fact type `{}` has no internal uniqueness constraint",
                        ft.name()
                    ),
                });
            }
        }
    }
}

/// V3 (reconstruction): a value type that plays no role contributes nothing
/// lexical to the schema.
pub struct V3;

impl Check for V3 {
    fn code(&self) -> CheckCode {
        CheckCode::V3
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Structure]
    }

    fn run(&self, schema: &Schema, idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (ty, ot) in schema.object_types() {
            if ot.kind() == ObjectTypeKind::Value && idx.roles_of_type[ty.index()].is_empty() {
                out.push(Finding {
                    code: CheckCode::V3,
                    severity: Severity::Info,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::ObjectType(ty)],
                    message: format!("value type `{}` plays no role", ot.name()),
                });
            }
        }
    }
}

/// S1: a subset constraint may not be superfluous — implied by the other
/// subset/equality constraints.
pub struct S1;

impl Check for S1 {
    fn code(&self) -> CheckCode {
        CheckCode::S1
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Subset {
                continue;
            }
            let graph = SetPathGraph::build(schema, Some(cid));
            let sub = Node::from_seq(&sc.args[0]);
            let sup = Node::from_seq(&sc.args[1]);
            if let Some(chain) = graph.path(&sub, &sup) {
                let mut culprits = vec![Element::Constraint(cid)];
                culprits.extend(chain.into_iter().map(Element::Constraint));
                out.push(Finding {
                    code: CheckCode::S1,
                    severity: Severity::Redundancy,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits,
                    message: format!(
                        "the subset constraint {} ⊆ {} is implied by other constraints",
                        schema.seq_label(&sc.args[0]),
                        schema.seq_label(&sc.args[1])
                    ),
                });
            }
        }
    }
}

/// S2: a subset constraint may not contain loops. Role-subset loops only
/// force the populations to be equal — "not relevant for unsatisfiability"
/// (§3) — so this stays a guideline; the *subtype* analogue is Pattern 9.
pub struct S2;

impl Check for S2 {
    fn code(&self) -> CheckCode {
        CheckCode::S2
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let graph = SetPathGraph::build(schema, None);
        let mut reported: BTreeSet<Node> = BTreeSet::new();
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Subset {
                continue;
            }
            let sub = Node::from_seq(&sc.args[0]);
            if graph.on_cycle(&sub) && reported.insert(sub.clone()) {
                out.push(Finding {
                    code: CheckCode::S2,
                    severity: Severity::Guideline,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "subset constraints form a loop through {}; the populations \
                         are forced equal (use an equality constraint)",
                        schema.seq_label(&sc.args[0])
                    ),
                });
            }
        }
    }
}

/// S3: an equality constraint may not be superfluous.
pub struct S3;

impl Check for S3 {
    fn code(&self) -> CheckCode {
        CheckCode::S3
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Equality {
                continue;
            }
            let graph = SetPathGraph::build(schema, Some(cid));
            let implied = sc.args.iter().all(|a| {
                sc.args
                    .iter()
                    .all(|b| a == b || graph.path(&Node::from_seq(a), &Node::from_seq(b)).is_some())
            });
            if implied {
                out.push(Finding {
                    code: CheckCode::S3,
                    severity: Severity::Redundancy,
                    unsat_roles: vec![],
                    joint_unsat_roles: Vec::new(),
                    unsat_types: vec![],
                    culprits: vec![Element::Constraint(cid)],
                    message: format!(
                        "the equality constraint over {} is implied by other constraints",
                        sc.args.iter().map(|a| schema.seq_label(a)).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
        }
    }
}

/// S4: the arguments of an exclusion constraint may not have a common
/// subset. A role sequence with SetPaths into two mutually exclusive
/// sequences is provably empty — the generalization of Pattern 6 to a
/// *third* sequence (Pattern 6 is the special case where the common subset
/// is one of the arguments).
pub struct S4;

impl Check for S4 {
    fn code(&self) -> CheckCode {
        CheckCode::S4
    }

    fn triggers(&self) -> &'static [Trigger] {
        &[Trigger::Constraint(ConstraintKind::SetComparison)]
    }

    fn run(&self, schema: &Schema, _idx: &SchemaIndex, out: &mut Vec<Finding>) {
        let graph = SetPathGraph::build(schema, None);
        let nodes: Vec<Node> = graph.nodes().cloned().collect();
        for (cid, c) in schema.constraints() {
            let Constraint::SetComparison(sc) = c else { continue };
            if sc.kind != SetComparisonKind::Exclusion {
                continue;
            }
            let args: Vec<Node> = sc.args.iter().map(Node::from_seq).collect();
            for node in &nodes {
                if args.contains(node) {
                    continue; // Pattern 6's case, reported there.
                }
                let mut reaching: Vec<(usize, Vec<orm_model::ConstraintId>)> = Vec::new();
                for (i, arg) in args.iter().enumerate() {
                    if let Some(chain) = graph.path(node, arg) {
                        reaching.push((i, chain));
                    }
                }
                if reaching.len() >= 2 {
                    let mut dead: BTreeSet<RoleId> = BTreeSet::new();
                    for r in node.roles() {
                        let fact = schema.fact_type(schema.role(r).fact_type());
                        dead.insert(fact.first());
                        dead.insert(fact.second());
                    }
                    let mut culprits = vec![Element::Constraint(cid)];
                    for (_, chain) in &reaching {
                        for link in chain {
                            let e = Element::Constraint(*link);
                            if !culprits.contains(&e) {
                                culprits.push(e);
                            }
                        }
                    }
                    let names: Vec<&str> = dead.iter().map(|r| schema.role_label(*r)).collect();
                    out.push(Finding {
                        code: CheckCode::S4,
                        severity: Severity::Unsatisfiable,
                        unsat_roles: dead.into_iter().collect(),
                        joint_unsat_roles: Vec::new(),
                        unsat_types: vec![],
                        culprits,
                        message: format!(
                            "{} is a common subset of two mutually exclusive role \
                             sequences, so the role(s) {} cannot be populated",
                            match node {
                                Node::Role(r) => format!("role `{}`", schema.role_label(*r)),
                                Node::Pair(a, b) => format!(
                                    "predicate ({}, {})",
                                    schema.role_label(*a),
                                    schema.role_label(*b)
                                ),
                            },
                            names.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// All RIDL-A lints in order.
pub fn ridl_rules() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(V1),
        Box::new(V2),
        Box::new(V3),
        Box::new(S1),
        Box::new(S2),
        Box::new(S3),
        Box::new(S4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RoleSeq, SchemaBuilder};

    fn run_rule(check: &dyn Check, schema: &Schema) -> Vec<Finding> {
        let mut out = Vec::new();
        check.run(schema, &schema.index(), &mut out);
        out
    }

    #[test]
    fn v1_flags_isolated_type() {
        let mut b = SchemaBuilder::new("s");
        b.entity_type("Lonely").unwrap();
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        b.fact_type("f", a, x).unwrap();
        let s = b.finish();
        let f = run_rule(&V1, &s);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Lonely"));
    }

    #[test]
    fn v1_ignores_constrained_types() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.exclusive_types([a, c]).unwrap();
        let s = b.finish();
        assert!(run_rule(&V1, &s).is_empty());
    }

    #[test]
    fn v2_flags_uc_less_fact() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        b.fact_type("g", a, a).unwrap();
        let r = b.schema().fact_type(f).first();
        b.unique([r]).unwrap();
        let s = b.finish();
        let findings = run_rule(&V2, &s);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains('g'));
    }

    #[test]
    fn v3_flags_unused_value_type() {
        let mut b = SchemaBuilder::new("s");
        b.value_type("Code", None).unwrap();
        let s = b.finish();
        assert_eq!(run_rule(&V3, &s).len(), 1);
    }

    fn three_role_schema() -> (SchemaBuilder, [orm_model::RoleId; 3]) {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let f3 = b.fact_type("f3", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        (b, [r1, r3, r5])
    }

    #[test]
    fn s1_flags_implied_subset() {
        let (mut b, [r1, r3, r5]) = three_role_schema();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        b.subset(RoleSeq::single(r3), RoleSeq::single(r5)).unwrap();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r5)).unwrap(); // implied
        let s = b.finish();
        let f = run_rule(&S1, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Redundancy);
    }

    #[test]
    fn s1_silent_on_independent_subsets() {
        let (mut b, [r1, r3, r5]) = three_role_schema();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        b.subset(RoleSeq::single(r3), RoleSeq::single(r5)).unwrap();
        let s = b.finish();
        assert!(run_rule(&S1, &s).is_empty());
    }

    #[test]
    fn s2_flags_subset_loop_as_guideline_only() {
        let (mut b, [r1, r3, r5]) = three_role_schema();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        b.subset(RoleSeq::single(r3), RoleSeq::single(r5)).unwrap();
        b.subset(RoleSeq::single(r5), RoleSeq::single(r1)).unwrap();
        let s = b.finish();
        let f = run_rule(&S2, &s);
        assert!(!f.is_empty());
        // §3: subset loops do NOT make roles unsatisfiable.
        for finding in &f {
            assert_eq!(finding.severity, Severity::Guideline);
            assert!(finding.unsat_roles.is_empty());
        }
    }

    #[test]
    fn s3_flags_equality_implied_by_subset_cycle() {
        let (mut b, [r1, r3, _]) = three_role_schema();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        b.subset(RoleSeq::single(r3), RoleSeq::single(r1)).unwrap();
        b.equality([RoleSeq::single(r1), RoleSeq::single(r3)]).unwrap();
        let s = b.finish();
        assert_eq!(run_rule(&S3, &s).len(), 1);
    }

    #[test]
    fn s3_silent_on_unimplied_equality() {
        let (mut b, [r1, r3, _]) = three_role_schema();
        b.equality([RoleSeq::single(r1), RoleSeq::single(r3)]).unwrap();
        let s = b.finish();
        assert!(run_rule(&S3, &s).is_empty());
    }

    #[test]
    fn s4_flags_common_subset_of_exclusion_args() {
        let (mut b, [r1, r3, r5]) = three_role_schema();
        // r5 ⊆ r1 and r5 ⊆ r3 with r1 ⊗ r3: r5 must be empty.
        b.subset(RoleSeq::single(r5), RoleSeq::single(r1)).unwrap();
        b.subset(RoleSeq::single(r5), RoleSeq::single(r3)).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let f = run_rule(&S4, &s);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Unsatisfiable);
        assert!(f[0].unsat_roles.contains(&r5));
        // r1 and r3 themselves are NOT flagged by S4.
        assert!(!f[0].unsat_roles.contains(&r1));
        assert!(!f[0].unsat_roles.contains(&r3));
    }

    #[test]
    fn s4_silent_when_only_one_side_reached() {
        let (mut b, [r1, r3, r5]) = three_role_schema();
        b.subset(RoleSeq::single(r5), RoleSeq::single(r1)).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        assert!(run_rule(&S4, &s).is_empty());
    }

    #[test]
    fn all_rules_enumerated() {
        let rules = ridl_rules();
        assert_eq!(rules.len(), 7);
        let codes: Vec<CheckCode> = rules.iter().map(|r| r.code()).collect();
        assert_eq!(codes, CheckCode::RIDL_RULES.to_vec());
    }
}
