//! Diagnostic vocabulary: check codes, severities, findings and reports.
//!
//! The paper's DogmaModeler implementation "does not only detect
//! unsatisfiable ORM models, but also gives details about the detected
//! problems, such as which constraints cause the unsatisfiability" (§4).
//! [`Finding`] carries exactly that: the check that fired, the roles/types
//! proven unpopulatable, and the *culprit* elements whose interaction causes
//! the contradiction.

use orm_model::{Element, ObjectTypeId, RoleId, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one of the implemented checks.
///
/// * `P1`–`P9` — the paper's nine unsatisfiability patterns (§2).
/// * `Fr1`–`Fr7` — Halpin's formation rules \[H89\] as discussed in §3.
/// * `V1`–`V3` — representative RIDL-A validity-analysis lints (§3; the RIDL
///   report is not publicly available, so these reconstruct the *kind* of
///   rule the paper describes as "not relevant for unsatisfiability").
/// * `S1`–`S4` — RIDL-A set-constraint analysis rules (§3).
/// * `E1`–`E5` — extensions in the spirit of the paper's conclusion (§5):
///   empty value constraints, ring constraints needing a minimum number of
///   values, unsatisfiability propagation, and set comparisons between
///   roles whose players can never share instances, and mandatory roles on
///   acyclic ring facts (an infinity-axiom contradiction under ORM's finite
///   population semantics). `E4` and `E5` were discovered by this
///   reproduction's own cross-validation: the complete reasoners refuted
///   schemas that pass all nine patterns (see EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum CheckCode {
    P1,
    P2,
    P3,
    P4,
    P5,
    P6,
    P7,
    P8,
    P9,
    Fr1,
    Fr2,
    Fr3,
    Fr4,
    Fr5,
    Fr6,
    Fr7,
    V1,
    V2,
    V3,
    S1,
    S2,
    S3,
    S4,
    E1,
    E2,
    E3,
    E4,
    E5,
}

impl CheckCode {
    /// The nine patterns of the paper, in order.
    pub const PATTERNS: [CheckCode; 9] = [
        CheckCode::P1,
        CheckCode::P2,
        CheckCode::P3,
        CheckCode::P4,
        CheckCode::P5,
        CheckCode::P6,
        CheckCode::P7,
        CheckCode::P8,
        CheckCode::P9,
    ];

    /// Halpin's formation rules.
    pub const FORMATION_RULES: [CheckCode; 7] = [
        CheckCode::Fr1,
        CheckCode::Fr2,
        CheckCode::Fr3,
        CheckCode::Fr4,
        CheckCode::Fr5,
        CheckCode::Fr6,
        CheckCode::Fr7,
    ];

    /// RIDL-A rules (validity + set-constraint analysis).
    pub const RIDL_RULES: [CheckCode; 7] = [
        CheckCode::V1,
        CheckCode::V2,
        CheckCode::V3,
        CheckCode::S1,
        CheckCode::S2,
        CheckCode::S3,
        CheckCode::S4,
    ];

    /// Extension checks from the paper's future-work discussion.
    pub const EXTENSIONS: [CheckCode; 5] =
        [CheckCode::E1, CheckCode::E2, CheckCode::E3, CheckCode::E4, CheckCode::E5];

    /// All check codes.
    pub fn all() -> impl Iterator<Item = CheckCode> {
        Self::PATTERNS
            .into_iter()
            .chain(Self::FORMATION_RULES)
            .chain(Self::RIDL_RULES)
            .chain(Self::EXTENSIONS)
    }

    /// Whether this check, when it fires, proves that some role or object
    /// type can never be populated (§3's notion of a *relevant* rule).
    pub fn is_unsat_relevant(self) -> bool {
        matches!(
            self,
            CheckCode::P1
                | CheckCode::P2
                | CheckCode::P3
                | CheckCode::P4
                | CheckCode::P5
                | CheckCode::P6
                | CheckCode::P7
                | CheckCode::P8
                | CheckCode::P9
                | CheckCode::Fr5
                | CheckCode::S4
                | CheckCode::E1
                | CheckCode::E2
                | CheckCode::E3
                | CheckCode::E4
                | CheckCode::E5
        )
    }

    /// Short display label (`"Pattern 3"`, `"Formation rule 6"`, …).
    pub fn label(self) -> &'static str {
        match self {
            CheckCode::P1 => "Pattern 1 (top common supertype)",
            CheckCode::P2 => "Pattern 2 (exclusive constraint between types)",
            CheckCode::P3 => "Pattern 3 (exclusion-mandatory)",
            CheckCode::P4 => "Pattern 4 (frequency-value)",
            CheckCode::P5 => "Pattern 5 (value-exclusion-frequency)",
            CheckCode::P6 => "Pattern 6 (set-comparison constraints)",
            CheckCode::P7 => "Pattern 7 (uniqueness-frequency)",
            CheckCode::P8 => "Pattern 8 (ring constraints)",
            CheckCode::P9 => "Pattern 9 (loops in subtypes)",
            CheckCode::Fr1 => "Formation rule 1 (no FC(1-1); use uniqueness)",
            CheckCode::Fr2 => "Formation rule 2 (no FC spanning a predicate)",
            CheckCode::Fr3 => "Formation rule 3 (no FC on a UC-spanned sequence)",
            CheckCode::Fr4 => "Formation rule 4 (no UC spanned by a longer UC)",
            CheckCode::Fr5 => "Formation rule 5 (no exclusion on mandatory roles)",
            CheckCode::Fr6 => "Formation rule 6 (no exclusion across subtype-related players)",
            CheckCode::Fr7 => "Formation rule 7 (FC bound vs other-role cardinalities)",
            CheckCode::V1 => "RIDL V1 (isolated object type)",
            CheckCode::V2 => "RIDL V2 (fact type without uniqueness)",
            CheckCode::V3 => "RIDL V3 (value type playing no role)",
            CheckCode::S1 => "RIDL S1 (superfluous subset constraint)",
            CheckCode::S2 => "RIDL S2 (loop in subset constraints)",
            CheckCode::S3 => "RIDL S3 (superfluous equality constraint)",
            CheckCode::S4 => "RIDL S4 (common subset of exclusion arguments)",
            CheckCode::E1 => "Extension 1 (empty value constraint)",
            CheckCode::E2 => "Extension 2 (irreflexive ring needs two values)",
            CheckCode::E3 => "Extension 3 (unsatisfiability propagation)",
            CheckCode::E4 => "Extension 4 (set comparison across incompatible players)",
            CheckCode::E5 => "Extension 5 (mandatory role on an acyclic ring fact)",
        }
    }
}

impl fmt::Display for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Some role or object type provably has an empty population in every
    /// model of the schema.
    Unsatisfiable,
    /// Legal but poor modeling style (the paper's "guidelines for good
    /// modeling").
    Guideline,
    /// A constraint implied by others ("superfluous" in RIDL terms).
    Redundancy,
    /// Informational note.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Unsatisfiable => write!(f, "UNSATISFIABLE"),
            Severity::Guideline => write!(f, "guideline"),
            Severity::Redundancy => write!(f, "redundancy"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// One detected problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The check that fired.
    pub code: CheckCode,
    /// How serious the problem is.
    pub severity: Severity,
    /// Roles proven unpopulatable by this finding — **each** of these is
    /// empty in every model of the schema.
    pub unsat_roles: Vec<RoleId>,
    /// Roles that can never **all** be populated in one model, although
    /// each may be populatable on its own. Pattern 5 produces these (the
    /// paper: "some roles in R cannot be satisfied"); strong satisfiability
    /// fails either way.
    pub joint_unsat_roles: Vec<RoleId>,
    /// Object types proven unpopulatable by this finding.
    pub unsat_types: Vec<ObjectTypeId>,
    /// The schema elements whose interaction causes the problem.
    pub culprits: Vec<Element>,
    /// DogmaModeler-style explanation message.
    pub message: String,
}

impl Finding {
    /// Render with the check label prefixed.
    pub fn render(&self) -> String {
        format!("[{}] {}: {}", self.severity, self.code.label(), self.message)
    }
}

/// The outcome of a validation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in check order.
    pub findings: Vec<Finding>,
    /// The schema revision the report was computed for.
    pub schema_revision: u64,
}

impl Report {
    /// Whether any unsatisfiability was detected.
    pub fn has_unsat(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Unsatisfiable)
    }

    /// All roles proven unpopulatable, across findings.
    pub fn unsat_roles(&self) -> BTreeSet<RoleId> {
        self.findings.iter().flat_map(|f| f.unsat_roles.iter().copied()).collect()
    }

    /// All object types proven unpopulatable, across findings.
    pub fn unsat_types(&self) -> BTreeSet<ObjectTypeId> {
        self.findings.iter().flat_map(|f| f.unsat_types.iter().copied()).collect()
    }

    /// Groups of roles that can never be populated simultaneously
    /// (Pattern 5's verdicts).
    pub fn joint_unsat_groups(&self) -> Vec<&[RoleId]> {
        self.findings
            .iter()
            .filter(|f| !f.joint_unsat_roles.is_empty())
            .map(|f| f.joint_unsat_roles.as_slice())
            .collect()
    }

    /// Findings produced by a particular check.
    pub fn by_code(&self, code: CheckCode) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }

    /// Findings of a particular severity.
    pub fn by_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// Whether the run found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable multi-line rendering with element names resolved
    /// against `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        if self.findings.is_empty() {
            return format!(
                "schema `{}`: no problems detected by the enabled checks\n",
                schema.name()
            );
        }
        let mut out = String::new();
        out.push_str(&format!("schema `{}`: {} finding(s)\n", schema.name(), self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!("  {}\n", f.render()));
            if !f.unsat_roles.is_empty() {
                let names: Vec<&str> =
                    f.unsat_roles.iter().map(|r| schema.role_label(*r)).collect();
                out.push_str(&format!("    unsatisfiable roles: {}\n", names.join(", ")));
            }
            if !f.joint_unsat_roles.is_empty() {
                let names: Vec<&str> =
                    f.joint_unsat_roles.iter().map(|r| schema.role_label(*r)).collect();
                out.push_str(&format!(
                    "    jointly unsatisfiable roles (cannot all be populated): {}\n",
                    names.join(", ")
                ));
            }
            if !f.unsat_types.is_empty() {
                let names: Vec<&str> =
                    f.unsat_types.iter().map(|t| schema.object_type(*t).name()).collect();
                out.push_str(&format!("    unsatisfiable types: {}\n", names.join(", ")));
            }
            if !f.culprits.is_empty() {
                let names: Vec<String> =
                    f.culprits.iter().map(|e| schema.element_label(*e)).collect();
                out.push_str(&format!("    caused by: {}\n", names.join(" + ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_codes_are_unsat_relevant() {
        for code in CheckCode::PATTERNS {
            assert!(code.is_unsat_relevant(), "{code} must be unsat-relevant");
        }
    }

    #[test]
    fn formation_rules_relevance_matches_paper_section_3() {
        // §3: only rule 5 is "exactly pattern 3"; rules 1, 3, 4, 6 are not
        // relevant; rule 2's unsat case and rule 7 are covered by patterns
        // 7 and 4 respectively, so the rules themselves stay lints.
        assert!(CheckCode::Fr5.is_unsat_relevant());
        for code in [
            CheckCode::Fr1,
            CheckCode::Fr2,
            CheckCode::Fr3,
            CheckCode::Fr4,
            CheckCode::Fr6,
            CheckCode::Fr7,
        ] {
            assert!(!code.is_unsat_relevant(), "{code} must not be unsat-relevant");
        }
    }

    #[test]
    fn ridl_relevance_matches_paper_section_3() {
        // §3: S4 is "a valid condition for detecting inconsistency"; the
        // validity rules and S1-S3 are not.
        assert!(CheckCode::S4.is_unsat_relevant());
        for code in [
            CheckCode::V1,
            CheckCode::V2,
            CheckCode::V3,
            CheckCode::S1,
            CheckCode::S2,
            CheckCode::S3,
        ] {
            assert!(!code.is_unsat_relevant(), "{code} must not be unsat-relevant");
        }
    }

    #[test]
    fn all_codes_enumerated_once() {
        let all: Vec<CheckCode> = CheckCode::all().collect();
        assert_eq!(all.len(), 9 + 7 + 7 + 5);
        let set: BTreeSet<CheckCode> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn report_aggregations() {
        let finding = Finding {
            code: CheckCode::P7,
            severity: Severity::Unsatisfiable,
            unsat_roles: vec![RoleId::from_raw(0)],
            joint_unsat_roles: Vec::new(),
            unsat_types: vec![],
            culprits: vec![],
            message: "demo".into(),
        };
        let report = Report { findings: vec![finding], schema_revision: 0 };
        assert!(report.has_unsat());
        assert!(!report.is_clean());
        assert_eq!(report.unsat_roles().len(), 1);
        assert!(report.unsat_types().is_empty());
        assert_eq!(report.by_code(CheckCode::P7).count(), 1);
        assert_eq!(report.by_code(CheckCode::P1).count(), 0);
        assert_eq!(report.by_severity(Severity::Unsatisfiable).count(), 1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: BTreeSet<&str> = CheckCode::all().map(CheckCode::label).collect();
        assert_eq!(labels.len(), CheckCode::all().count());
    }
}
