//! The paper's figures as executable schema fixtures.
//!
//! Every worked example of §2/§3 is encoded once here and reused by unit
//! tests, integration tests, the benchmark harness and the `experiments`
//! binary. Each fixture records the *expected* validator outcome so that
//! EXPERIMENTS.md can print paper-vs-measured rows mechanically.

use crate::diagnostics::CheckCode;
use orm_model::{RingKind, RoleSeq, Schema, SchemaBuilder, ValueConstraint};

/// A paper figure with its expected validation outcome.
pub struct Fixture {
    /// Experiment id, e.g. `"FIG1"`.
    pub id: &'static str,
    /// What the paper claims about it.
    pub paper_claim: &'static str,
    /// The encoded schema.
    pub schema: Schema,
    /// Pattern codes expected to fire (empty = schema passes all patterns).
    pub expect_codes: Vec<CheckCode>,
    /// Role labels expected to be reported unsatisfiable (each provably
    /// empty in every model).
    pub expect_unsat_roles: Vec<&'static str>,
    /// Role labels expected to be reported *jointly* unsatisfiable (cannot
    /// all be populated in one model — Pattern 5's verdict).
    pub expect_joint_unsat_roles: Vec<&'static str>,
    /// Object type names expected to be reported unsatisfiable.
    pub expect_unsat_types: Vec<&'static str>,
}

/// Fig. 1 — Person/Student/Employee/PhDStudent; PhDStudent dies by the
/// exclusive constraint (Pattern 2), while the schema stays weakly
/// satisfiable.
pub fn fig1() -> Fixture {
    let mut b = SchemaBuilder::new("fig1_phd_student");
    let person = b.entity_type("Person").unwrap();
    let student = b.entity_type("Student").unwrap();
    let employee = b.entity_type("Employee").unwrap();
    let phd = b.entity_type("PhdStudent").unwrap();
    b.subtype(student, person).unwrap();
    b.subtype(employee, person).unwrap();
    b.subtype(phd, student).unwrap();
    b.subtype(phd, employee).unwrap();
    b.exclusive_types([student, employee]).unwrap();
    Fixture {
        id: "FIG1",
        paper_claim: "PhDStudent cannot be populated; the global schema is satisfiable",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P2],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec!["PhdStudent"],
    }
}

/// Fig. 2 — subtype without a top common supertype (Pattern 1).
pub fn fig2() -> Fixture {
    let mut b = SchemaBuilder::new("fig2_no_common_supertype");
    let a = b.entity_type("A").unwrap();
    let bb = b.entity_type("B").unwrap();
    let c = b.entity_type("C").unwrap();
    b.subtype(c, a).unwrap();
    b.subtype(c, bb).unwrap();
    Fixture {
        id: "FIG2",
        paper_claim: "C cannot be satisfied: supertypes A and B are mutually exclusive",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P1],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec!["C"],
    }
}

/// Fig. 3 — subtype of mutually exclusive supertypes (Pattern 2).
pub fn fig3() -> Fixture {
    let mut b = SchemaBuilder::new("fig3_exclusive_supertypes");
    let a = b.entity_type("A").unwrap();
    let bb = b.entity_type("B").unwrap();
    let c = b.entity_type("C").unwrap();
    let d = b.entity_type("D").unwrap();
    b.subtype(bb, a).unwrap();
    b.subtype(c, a).unwrap();
    b.subtype(d, bb).unwrap();
    b.subtype(d, c).unwrap();
    b.exclusive_types([bb, c]).unwrap();
    Fixture {
        id: "FIG3",
        paper_claim: "D cannot be satisfied: its supertypes B and C are exclusive",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P2],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec!["D"],
    }
}

/// Fig. 4a — mandatory r1, exclusion {r1, r3}: r3 dies (Pattern 3).
pub fn fig4a() -> Fixture {
    let mut b = SchemaBuilder::new("fig4a_exclusion_mandatory");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("B").unwrap();
    let y = b.entity_type("C").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    b.mandatory(r1).unwrap();
    b.exclusion_roles([r1, r3]).unwrap();
    Fixture {
        id: "FIG4a",
        paper_claim: "r3 will never be played",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P3],
        expect_unsat_roles: vec!["r3"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 4b — both r1 and r3 mandatory: both die, and A itself (Pattern 3).
pub fn fig4b() -> Fixture {
    let mut b = SchemaBuilder::new("fig4b_double_mandatory");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("B").unwrap();
    let y = b.entity_type("C").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    b.mandatory(r1).unwrap();
    b.mandatory(r3).unwrap();
    b.exclusion_roles([r1, r3]).unwrap();
    Fixture {
        id: "FIG4b",
        paper_claim: "both r1 and r3 will never be played",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P3],
        expect_unsat_roles: vec!["r1", "r3"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec!["A"],
    }
}

/// Fig. 4c — subtype B of A plays r5; mandatory r1; exclusion {r1, r3, r5}:
/// r3 and r5 die (Pattern 3).
pub fn fig4c() -> Fixture {
    let mut b = SchemaBuilder::new("fig4c_subtype_exclusion");
    let a = b.entity_type("A").unwrap();
    let bb = b.entity_type("B").unwrap();
    b.subtype(bb, a).unwrap();
    let x = b.entity_type("X").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (x, Some("r4")), None).unwrap();
    let f3 = b.fact_type_full("f3", (bb, Some("r5")), (x, Some("r6")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let r5 = b.schema().fact_type(f3).first();
    b.mandatory(r1).unwrap();
    b.exclusion_roles([r1, r3, r5]).unwrap();
    Fixture {
        id: "FIG4c",
        paper_claim: "r3 and r5 will never be played",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P3],
        expect_unsat_roles: vec!["r3", "r5"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 5 — FC(3-5) on r1 vs value constraint {'x1','x2'} on B (Pattern 4).
pub fn fig5() -> Fixture {
    let mut b = SchemaBuilder::new("fig5_frequency_value");
    let a = b.entity_type("A").unwrap();
    let bb = b.value_type("B", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
    let f = b.fact_type_full("f", (a, Some("r1")), (bb, Some("r2")), None).unwrap();
    let r1 = b.schema().fact_type(f).first();
    b.frequency([r1], 3, Some(5)).unwrap();
    Fixture {
        id: "FIG5",
        paper_claim: "r1 cannot be populated: FC(3-5) needs 3 partners, only 2 values exist",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P4],
        // The paper flags r1; an empty r1 projection means an empty fact
        // table, so r2 is reported as collateral damage as well.
        expect_unsat_roles: vec!["r1", "r2"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 6 — value + exclusion + frequency jointly contradictory
/// (Pattern 5); any two of the three are consistent.
pub fn fig6() -> Fixture {
    let mut b = SchemaBuilder::new("fig6_value_exclusion_frequency");
    let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
    let x = b.entity_type("B").unwrap();
    let y = b.entity_type("C").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (y, Some("r4")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r2 = b.schema().fact_type(f1).second();
    let r3 = b.schema().fact_type(f2).first();
    b.frequency([r2], 2, None).unwrap();
    b.exclusion_roles([r1, r3]).unwrap();
    Fixture {
        id: "FIG6",
        paper_claim: "populating r1 and r3 needs 3 distinct A-values, only 2 exist",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P5],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec!["r1", "r3"],
        expect_unsat_types: vec![],
    }
}

/// Fig. 7 — the special case without frequency constraints: three exclusive
/// roles over a two-value type (Pattern 5).
pub fn fig7() -> Fixture {
    let mut b = SchemaBuilder::new("fig7_value_exclusion");
    let a = b.value_type("A", Some(ValueConstraint::enumeration(["v1", "v2"]))).unwrap();
    let x = b.entity_type("X").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (x, Some("r4")), None).unwrap();
    let f3 = b.fact_type_full("f3", (a, Some("r5")), (x, Some("r6")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let r5 = b.schema().fact_type(f3).first();
    b.exclusion_roles([r1, r3, r5]).unwrap();
    Fixture {
        id: "FIG7",
        paper_claim: "r1, r3, r5 need 3 distinct values of A, only 2 exist",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P5],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec!["r1", "r3", "r5"],
        expect_unsat_types: vec![],
    }
}

/// Fig. 8 — exclusion between r1/r3 contradicting a subset between the
/// predicates (Pattern 6).
pub fn fig8() -> Fixture {
    let mut b = SchemaBuilder::new("fig8_exclusion_subset");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("B").unwrap();
    let f1 = b.fact_type_full("f1", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (a, Some("r3")), (x, Some("r4")), None).unwrap();
    let [r1, r2] = b.schema().fact_type(f1).roles();
    let [r3, r4] = b.schema().fact_type(f2).roles();
    b.exclusion_roles([r1, r3]).unwrap();
    b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)).unwrap();
    Fixture {
        id: "FIG8",
        paper_claim: "the exclusion and subset constraints contradict; f1 cannot be populated",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P6],
        expect_unsat_roles: vec!["r1", "r2"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 10 — uniqueness vs FC(2-5) on the same role (Pattern 7).
pub fn fig10() -> Fixture {
    let mut b = SchemaBuilder::new("fig10_uniqueness_frequency");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("B").unwrap();
    let f = b.fact_type_full("f", (a, Some("r1")), (x, Some("r2")), None).unwrap();
    let r1 = b.schema().fact_type(f).first();
    b.unique([r1]).unwrap();
    b.frequency([r1], 2, Some(5)).unwrap();
    Fixture {
        id: "FIG10",
        paper_claim: "it is impossible to populate r1",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P7],
        expect_unsat_roles: vec!["r1", "r2"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 11 — irreflexive SisterOf: a *satisfiable* ring use; no pattern may
/// fire (no false positives).
pub fn fig11() -> Fixture {
    let mut b = SchemaBuilder::new("fig11_sister_of");
    let woman = b.entity_type("Woman").unwrap();
    let f = b
        .fact_type_full("sister_of", (woman, Some("r1")), (woman, Some("r2")), Some("is sister of"))
        .unwrap();
    b.ring(f, [RingKind::Irreflexive]).unwrap();
    Fixture {
        id: "FIG11",
        paper_claim: "no woman is her own sister; the schema is satisfiable",
        schema: b.finish(),
        expect_codes: vec![],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// An unsatisfiable ring combination (acyclic + symmetric), the Fig. 12 /
/// Table 1 flagship clash (Pattern 8).
pub fn fig12_incompatible() -> Fixture {
    let mut b = SchemaBuilder::new("fig12_acyclic_symmetric");
    let t = b.entity_type("T").unwrap();
    let f = b.fact_type_full("rel", (t, Some("r1")), (t, Some("r2")), None).unwrap();
    b.ring(f, [RingKind::Acyclic, RingKind::Symmetric]).unwrap();
    Fixture {
        id: "FIG12",
        paper_claim: "acyclic and symmetric are incompatible (Euler diagram)",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P8],
        expect_unsat_roles: vec!["r1", "r2"],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// Fig. 13 — loop in subtypes (Pattern 9).
pub fn fig13() -> Fixture {
    let mut b = SchemaBuilder::new("fig13_subtype_loop");
    let a = b.entity_type("A").unwrap();
    let bb = b.entity_type("B").unwrap();
    let c = b.entity_type("C").unwrap();
    b.subtype(a, bb).unwrap();
    b.subtype(bb, c).unwrap();
    b.subtype(c, a).unwrap();
    Fixture {
        id: "FIG13",
        paper_claim: "none of A, B, C can be satisfied",
        schema: b.finish(),
        expect_codes: vec![CheckCode::P9],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec!["A", "B", "C"],
    }
}

/// Fig. 14 — violates formation rule 6 (exclusion across subtype-related
/// players) yet all roles are satisfiable; no pattern may fire.
pub fn fig14() -> Fixture {
    let mut b = SchemaBuilder::new("fig14_rule6_satisfiable");
    let a = b.entity_type("A").unwrap();
    let bb = b.entity_type("B").unwrap();
    let c = b.entity_type("C").unwrap();
    b.subtype(bb, a).unwrap();
    b.subtype(c, a).unwrap();
    b.total_subtypes(a, [bb, c]).unwrap();
    let x = b.entity_type("X").unwrap();
    let f1 = b.fact_type_full("f1", (bb, Some("r1")), (x, Some("r2")), None).unwrap();
    let f2 = b.fact_type_full("f2", (c, Some("r3")), (x, Some("r4")), None).unwrap();
    let f3 = b.fact_type_full("f3", (a, Some("r5")), (x, Some("r6")), None).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let r5 = b.schema().fact_type(f3).first();
    b.mandatory(r1).unwrap();
    b.mandatory(r3).unwrap();
    b.exclusion_roles([r3, r5]).unwrap();
    Fixture {
        id: "FIG14",
        paper_claim: "violates formation rule 6, but every role is satisfiable",
        schema: b.finish(),
        expect_codes: vec![],
        expect_unsat_roles: vec![],
        expect_joint_unsat_roles: vec![],
        expect_unsat_types: vec![],
    }
}

/// All figure fixtures, in paper order.
pub fn all() -> Vec<Fixture> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4a(),
        fig4b(),
        fig4c(),
        fig5(),
        fig6(),
        fig7(),
        fig8(),
        fig10(),
        fig11(),
        fig12_incompatible(),
        fig13(),
        fig14(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::validate;
    use std::collections::BTreeSet;

    /// Every fixture's expected outcome matches what the validator reports —
    /// the headline reproduction result for §2 (each figure is flagged by
    /// exactly the pattern the paper assigns it, and the satisfiable
    /// figures produce no false positives).
    #[test]
    fn every_fixture_matches_its_expectation() {
        for fixture in all() {
            let report = validate(&fixture.schema);
            let fired: BTreeSet<CheckCode> = report.findings.iter().map(|f| f.code).collect();
            let expected: BTreeSet<CheckCode> = fixture.expect_codes.iter().copied().collect();
            assert_eq!(fired, expected, "{}: expected {:?}, got {:?}", fixture.id, expected, fired);

            let got_roles: BTreeSet<&str> =
                report.unsat_roles().iter().map(|r| fixture.schema.role_label(*r)).collect();
            let want_roles: BTreeSet<&str> = fixture.expect_unsat_roles.iter().copied().collect();
            assert_eq!(got_roles, want_roles, "{}: unsat roles differ", fixture.id);

            let got_joint: BTreeSet<&str> = report
                .joint_unsat_groups()
                .iter()
                .flat_map(|g| g.iter().map(|r| fixture.schema.role_label(*r)))
                .collect();
            let want_joint: BTreeSet<&str> =
                fixture.expect_joint_unsat_roles.iter().copied().collect();
            assert_eq!(got_joint, want_joint, "{}: joint unsat roles differ", fixture.id);

            let got_types: BTreeSet<&str> = report
                .unsat_types()
                .iter()
                .map(|t| fixture.schema.object_type(*t).name())
                .collect();
            let want_types: BTreeSet<&str> = fixture.expect_unsat_types.iter().copied().collect();
            assert_eq!(got_types, want_types, "{}: unsat types differ", fixture.id);
        }
    }

    #[test]
    fn fixture_ids_are_unique() {
        let ids: BTreeSet<&str> = all().iter().map(|f| f.id).collect();
        assert_eq!(ids.len(), all().len());
    }

    #[test]
    fn fig14_triggers_formation_rule_6_lint() {
        let fixture = fig14();
        let report = crate::validator::validate_all(&fixture.schema);
        assert!(report.by_code(CheckCode::Fr6).count() >= 1);
        assert!(!report.has_unsat(), "Fig. 14 must stay satisfiable");
    }
}
