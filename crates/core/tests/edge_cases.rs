//! Edge-case suite: interactions between patterns and unusual-but-legal
//! schema shapes that the per-pattern unit tests do not cover.

use orm_core::{validate, validate_all, CheckCode, Validator, ValidatorSettings};
use orm_model::{RingKind, RoleSeq, SchemaBuilder, ValueConstraint};

/// A reflexive fact over a value-constrained type: Pattern 4 must use the
/// co-player (the same type here) correctly.
#[test]
fn p4_on_reflexive_fact() {
    let mut b = SchemaBuilder::new("s");
    let v = b.value_type("V", Some(ValueConstraint::enumeration(["a", "b"]))).unwrap();
    let f = b.fact_type("rel", v, v).unwrap();
    let r = b.schema().fact_type(f).first();
    b.frequency([r], 3, None).unwrap();
    let s = b.finish();
    let report = validate(&s);
    assert_eq!(report.by_code(CheckCode::P4).count(), 1);
}

/// Pattern 2 and Pattern 9 interact: an exclusive constraint between two
/// members of one subtype cycle dooms them twice over; both findings
/// appear, with consistent role sets.
#[test]
fn p2_and_p9_on_cyclic_exclusive_types() {
    let mut b = SchemaBuilder::new("s");
    let a = b.entity_type("A").unwrap();
    let c = b.entity_type("C").unwrap();
    b.subtype(a, c).unwrap();
    b.subtype(c, a).unwrap();
    b.exclusive_types([a, c]).unwrap();
    let s = b.finish();
    let report = validate(&s);
    assert_eq!(report.by_code(CheckCode::P9).count(), 1);
    // On a cycle, each type is in the other's reflexive subtype closure,
    // so Pattern 2's intersection contains both.
    assert_eq!(report.by_code(CheckCode::P2).count(), 1);
    let types = report.unsat_types();
    assert!(types.contains(&a) && types.contains(&c));
}

/// An exclusion with three predicate arguments checks every pair against
/// set paths (Pattern 6).
#[test]
fn p6_three_way_predicate_exclusion() {
    let mut b = SchemaBuilder::new("s");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("X").unwrap();
    let mut pairs = Vec::new();
    for i in 0..3 {
        let f = b.fact_type(&format!("f{i}"), a, x).unwrap();
        let ft = b.schema().fact_type(f);
        pairs.push(RoleSeq::pair(ft.first(), ft.second()));
    }
    b.exclusion(pairs.clone()).unwrap();
    // Subset between the *second and third* arguments.
    b.subset(pairs[1].clone(), pairs[2].clone()).unwrap();
    let s = b.finish();
    let report = validate(&s);
    assert_eq!(report.by_code(CheckCode::P6).count(), 1);
}

/// Several independent contradictions in one schema produce findings for
/// each, and propagation merges their consequences without duplication.
#[test]
fn multiple_contradictions_coexist() {
    let mut b = SchemaBuilder::new("s");
    // Contradiction 1: P7.
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("X").unwrap();
    let f = b.fact_type("f", a, x).unwrap();
    let r = b.schema().fact_type(f).first();
    b.unique([r]).unwrap();
    b.frequency([r], 2, None).unwrap();
    // Contradiction 2: P9.
    let p = b.entity_type("P").unwrap();
    let q = b.entity_type("Q").unwrap();
    b.subtype(p, q).unwrap();
    b.subtype(q, p).unwrap();
    // Contradiction 3: P8.
    let w = b.entity_type("W").unwrap();
    let g = b.fact_type("g", w, w).unwrap();
    b.ring(g, [RingKind::Acyclic, RingKind::Symmetric]).unwrap();
    let s = b.finish();
    let report = validate(&s);
    for code in [CheckCode::P7, CheckCode::P8, CheckCode::P9] {
        assert_eq!(report.by_code(code).count(), 1, "{code:?}");
    }
    assert_eq!(report.unsat_types().len(), 2); // P, Q
    assert_eq!(report.unsat_roles().len(), 4); // f + g roles
}

/// Disabling every check yields a clean report even on Fig. 1.
#[test]
fn empty_settings_are_silent() {
    let fixture = orm_core::fixtures::fig1();
    let validator = Validator::with_settings(ValidatorSettings::none());
    let report = validator.validate(&fixture.schema);
    assert!(report.is_clean());
}

/// A frequency constraint on the co-role side of a value-bounded type does
/// NOT trigger Pattern 4 (the bound applies to the other column).
#[test]
fn p4_direction_sensitivity() {
    let mut b = SchemaBuilder::new("s");
    let a = b.entity_type("A").unwrap();
    let v = b.value_type("V", Some(ValueConstraint::enumeration(["x"]))).unwrap();
    let f = b.fact_type("f", a, v).unwrap();
    let r2 = b.schema().fact_type(f).second(); // played by V
                                               // Each V value relates to at least 3 As: fine, As are unbounded.
    b.frequency([r2], 3, None).unwrap();
    let s = b.finish();
    assert!(validate(&s).is_clean());
}

/// Equality constraints participate in set paths for Pattern 6 in both
/// directions even when chained through a middle sequence.
#[test]
fn p6_through_equality_chain() {
    let mut b = SchemaBuilder::new("s");
    let a = b.entity_type("A").unwrap();
    let x = b.entity_type("X").unwrap();
    let f1 = b.fact_type("f1", a, x).unwrap();
    let f2 = b.fact_type("f2", a, x).unwrap();
    let f3 = b.fact_type("f3", a, x).unwrap();
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let r5 = b.schema().fact_type(f3).first();
    b.equality([RoleSeq::single(r1), RoleSeq::single(r3)]).unwrap();
    b.equality([RoleSeq::single(r3), RoleSeq::single(r5)]).unwrap();
    b.exclusion_roles([r1, r5]).unwrap();
    let s = b.finish();
    let report = validate(&s);
    assert_eq!(report.by_code(CheckCode::P6).count(), 1);
    // Equality both ways: both fact types die.
    assert_eq!(report.unsat_roles().len(), 4);
}

/// Tombstoned (removed) constraints are invisible to every check.
#[test]
fn removed_constraints_are_ignored() {
    let fixture = orm_core::fixtures::fig10();
    let mut schema = fixture.schema;
    assert!(validate(&schema).has_unsat());
    // Remove the frequency constraint (find it by kind).
    let fc = schema
        .constraints()
        .find(|(_, c)| matches!(c, orm_model::Constraint::Frequency(_)))
        .map(|(id, _)| id)
        .expect("present");
    schema.remove_constraint(fc);
    assert!(!validate(&schema).has_unsat());
}

/// `validate_all` on every fixture never reports a *lint* (guideline /
/// redundancy / info) as carrying unsat roles — severity discipline.
#[test]
fn lints_never_claim_unsatisfiability() {
    use orm_core::Severity;
    for fixture in orm_core::fixtures::all() {
        let report = validate_all(&fixture.schema);
        for finding in &report.findings {
            if finding.severity != Severity::Unsatisfiable {
                assert!(
                    finding.unsat_roles.is_empty() && finding.unsat_types.is_empty(),
                    "{}: lint {:?} claims unsatisfiability",
                    fixture.id,
                    finding.code
                );
            }
        }
    }
}

/// The E2 extension respects value bounds inherited through supertypes of
/// ring players.
#[test]
fn e2_with_inherited_bound() {
    let mut b = SchemaBuilder::new("s");
    let base = b.value_type("Base", Some(ValueConstraint::enumeration(["only"]))).unwrap();
    let sub = b.entity_type("Sub").unwrap();
    b.subtype(sub, base).unwrap();
    let f = b.fact_type("rel", sub, sub).unwrap();
    b.ring(f, [RingKind::Irreflexive]).unwrap();
    let s = b.finish();
    let report = Validator::with_settings(ValidatorSettings::all()).validate(&s);
    assert!(report.by_code(CheckCode::E2).count() >= 1);
}
