//! # orm-gen — random schema generation and fault injection
//!
//! Workload generation for the benchmark harness and the property tests:
//!
//! * [`generate_clean`] — schemas constructed so that none of the paper's
//!   nine patterns (nor the E1/E2 extensions) can fire: subtype *forests*,
//!   exclusions kept away from mandatory roles and set-paths, only
//!   compatible ring combinations, frequency minima of 1, generous value
//!   constraints. These measure the pure scanning cost of validation.
//! * [`generate`] — unrestricted schemas whose random constraint
//!   interactions may or may not be contradictory; the cross-validation
//!   property tests feed these to both the patterns and the bounded model
//!   finder.
//! * [`faults`] — nine injectors, one per pattern, that plant a *minimal*
//!   instance of the pattern's contradiction into any schema. The paper's
//!   CCFORM experience (§4) is simulated by seeding such faults into a
//!   realistic ontology.
//!
//! All generation is deterministic in the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod faults;
pub mod populate;

use orm_model::{ObjectTypeId, RingKind, RoleId, RoleSeq, Schema, SchemaBuilder, ValueConstraint};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed; equal seeds give equal schemas.
    pub seed: u64,
    /// Number of object types.
    pub n_types: usize,
    /// Number of binary fact types.
    pub n_facts: usize,
    /// Probability that a non-root type gets a supertype.
    pub subtype_density: f64,
    /// Probability that a role is mandatory.
    pub mandatory_density: f64,
    /// Probability that a fact type gets a single-role uniqueness.
    pub uniqueness_density: f64,
    /// Probability that a role gets a frequency constraint.
    pub frequency_density: f64,
    /// Probability that a type gets a value constraint.
    pub value_density: f64,
    /// Probability of an exclusion constraint per fact-type pair budget.
    pub exclusion_density: f64,
    /// Probability of a subset constraint per fact-type pair budget.
    pub subset_density: f64,
    /// Probability that a reflexive fact type gets ring constraints.
    pub ring_density: f64,
}

impl GenConfig {
    /// A small schema (~15 elements).
    pub fn small(seed: u64) -> Self {
        GenConfig { seed, n_types: 4, n_facts: 3, ..GenConfig::base(seed) }
    }

    /// A medium schema (~80 elements).
    pub fn medium(seed: u64) -> Self {
        GenConfig { seed, n_types: 20, n_facts: 25, ..GenConfig::base(seed) }
    }

    /// A large schema (~800 elements).
    pub fn large(seed: u64) -> Self {
        GenConfig { seed, n_types: 200, n_facts: 250, ..GenConfig::base(seed) }
    }

    /// A schema scaled to roughly `n` elements, for scaling benches.
    pub fn sized(seed: u64, n: usize) -> Self {
        let n_types = (n / 3).max(2);
        let n_facts = (n / 3).max(1);
        GenConfig { seed, n_types, n_facts, ..GenConfig::base(seed) }
    }

    fn base(seed: u64) -> Self {
        GenConfig {
            seed,
            n_types: 10,
            n_facts: 10,
            subtype_density: 0.5,
            mandatory_density: 0.3,
            uniqueness_density: 0.6,
            frequency_density: 0.2,
            value_density: 0.2,
            exclusion_density: 0.2,
            subset_density: 0.2,
            ring_density: 0.3,
        }
    }
}

fn flip(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Ring combinations that are compatible (safe for clean schemas); a
/// hard-coded subset of the regenerated Table 1.
const SAFE_RING_COMBOS: &[&[RingKind]] = &[
    &[RingKind::Irreflexive],
    &[RingKind::Acyclic],
    &[RingKind::Asymmetric],
    &[RingKind::Symmetric],
    &[RingKind::Intransitive],
    &[RingKind::Symmetric, RingKind::Intransitive],
    &[RingKind::Acyclic, RingKind::Intransitive],
    &[RingKind::Symmetric, RingKind::Irreflexive],
];

/// Generate a schema on which no pattern fires (see module docs).
pub fn generate_clean(config: &GenConfig) -> Schema {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = SchemaBuilder::new(format!("clean_{}", config.seed));

    // Subtype FOREST: each type at most one supertype among earlier types
    // (no diamonds → P1 silent; no cycles → P9 silent). Chains are kept
    // shallow (depth ≤ 2) so strict-subset semantics stays satisfiable
    // within the small domains the bounded model finder explores.
    let mut types: Vec<ObjectTypeId> = Vec::new();
    let mut depth: Vec<usize> = Vec::new();
    for i in 0..config.n_types {
        let ty = if flip(&mut rng, config.value_density) {
            // Generous value constraint: P4/P5/E1/E2 cannot bite with
            // frequency minima of 1 and ≤2-ary exclusions.
            let card = rng.gen_range(4..8);
            let values: Vec<String> = (0..card).map(|j| format!("v{i}_{j}")).collect();
            b.value_type(
                &format!("T{i}"),
                Some(ValueConstraint::enumeration(values.iter().map(String::as_str))),
            )
            .expect("fresh name")
        } else {
            b.entity_type(&format!("T{i}")).expect("fresh name")
        };
        let mut my_depth = 0;
        let is_value_type = b.schema().object_type(ty).value_constraint().is_some();
        // Value types stay out of subtyping in clean mode: stacked value
        // constraints intersect, and a near-empty intersection is exactly
        // the E1 contradiction a clean schema must not contain.
        if !types.is_empty() && !is_value_type && flip(&mut rng, config.subtype_density) {
            let roots: Vec<usize> = (0..types.len())
                .filter(|j| {
                    depth[*j] == 0 && b.schema().object_type(types[*j]).value_constraint().is_none()
                })
                .collect();
            if let Some(&j) = roots.as_slice().choose(&mut rng) {
                b.subtype(ty, types[j]).expect("forest edge");
                my_depth = depth[j] + 1;
            }
        }
        types.push(ty);
        depth.push(my_depth);
    }

    let mut roles: Vec<RoleId> = Vec::new();
    let mut reflexive_facts = Vec::new();
    for i in 0..config.n_facts {
        let p0 = *types.choose(&mut rng).expect("non-empty");
        // Bias towards reflexive facts now and then so rings have targets.
        let p1 =
            if flip(&mut rng, 0.25) { p0 } else { *types.choose(&mut rng).expect("non-empty") };
        let fid = b.fact_type(&format!("f{i}"), p0, p1).expect("fresh name");
        let ft = b.schema().fact_type(fid);
        let (r0, r1) = (ft.first(), ft.second());
        roles.push(r0);
        roles.push(r1);
        if p0 == p1 {
            reflexive_facts.push((fid, p0));
        }

        if flip(&mut rng, config.uniqueness_density) {
            b.unique([r0]).expect("valid uc");
        }
        if flip(&mut rng, config.mandatory_density) {
            b.mandatory(r0).expect("valid mandatory");
        }
        if flip(&mut rng, config.frequency_density) {
            // min = 1 keeps P4/P7 silent regardless of UCs and values.
            let max = rng.gen_range(2..6);
            b.frequency([r1], 1, Some(max)).expect("valid fc");
        }
    }

    // Subset chains over co-roles (second roles), disjoint from exclusions
    // (first roles) so Pattern 6 and S4 stay silent. Only roles whose
    // players can overlap are linked — a subset between roles of unrelated
    // players is unsatisfiable under implicit type exclusion (extension
    // check E4), which a clean schema must not contain.
    for i in 1..config.n_facts {
        if flip(&mut rng, config.subset_density) {
            let sub = roles[2 * i + 1];
            let sup = roles[2 * (i - 1) + 1];
            let idx = b.schema().index();
            if idx.may_overlap(b.schema().player(sub), b.schema().player(sup)) {
                let _ = b.subset(RoleSeq::single(sub), RoleSeq::single(sup));
            }
        }
    }

    // Exclusions between first roles of distinct facts, only when neither
    // is mandatory and the players carry no (inherited) value constraint.
    let schema_snapshot_mandatory: Vec<RoleId> = {
        let idx = b.schema().index();
        idx.mandatory_roles.iter().map(|(r, _)| *r).collect()
    };
    for i in 1..config.n_facts {
        if flip(&mut rng, config.exclusion_density) {
            let a = roles[2 * i];
            let c = roles[2 * (i - 1)];
            if schema_snapshot_mandatory.contains(&a) || schema_snapshot_mandatory.contains(&c) {
                continue;
            }
            let idx = b.schema().index();
            let value_bounded = |r: RoleId| {
                idx.supers_refl(b.schema().player(r))
                    .iter()
                    .any(|t| b.schema().object_type(*t).value_constraint().is_some())
            };
            if value_bounded(a) || value_bounded(c) {
                continue;
            }
            let _ = b.exclusion_roles([a, c]);
        }
    }

    // Compatible ring combinations on reflexive facts over value-free types.
    for (fid, player) in reflexive_facts {
        if !flip(&mut rng, config.ring_density) {
            continue;
        }
        let idx = b.schema().index();
        let value_bounded = idx
            .supers_refl(player)
            .iter()
            .any(|t| b.schema().object_type(*t).value_constraint().is_some());
        if value_bounded {
            continue;
        }
        // Acyclicity on a fact with a mandatory role is the E5
        // contradiction (finite populations force a cycle); keep clean
        // schemas clear of it.
        let has_mandatory =
            b.schema().fact_type(fid).roles().iter().any(|r| idx.mandatory_on(*r).is_some());
        let eligible: Vec<&&[RingKind]> = SAFE_RING_COMBOS
            .iter()
            .filter(|combo| !has_mandatory || !combo.contains(&RingKind::Acyclic))
            .collect();
        let combo = eligible.choose(&mut rng).expect("non-empty");
        b.ring(fid, combo.iter().copied()).expect("compatible players");
    }

    b.finish()
}

/// Generate an unrestricted schema: constraints are combined freely, so the
/// result may contain any of the paper's contradictions (or none).
pub fn generate(config: &GenConfig) -> Schema {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5EED));
    let mut b = SchemaBuilder::new(format!("rand_{}", config.seed));

    let mut types: Vec<ObjectTypeId> = Vec::new();
    for i in 0..config.n_types {
        let ty = if flip(&mut rng, config.value_density) {
            let card = rng.gen_range(1..4);
            let values: Vec<String> = (0..card).map(|j| format!("v{i}_{j}")).collect();
            b.value_type(
                &format!("T{i}"),
                Some(ValueConstraint::enumeration(values.iter().map(String::as_str))),
            )
            .expect("fresh name")
        } else {
            b.entity_type(&format!("T{i}")).expect("fresh name")
        };
        types.push(ty);
    }
    // Random subtype edges, any direction — diamonds and cycles allowed.
    for _ in 0..(config.n_types as f64 * config.subtype_density) as usize {
        let sub = *types.choose(&mut rng).expect("non-empty");
        let sup = *types.choose(&mut rng).expect("non-empty");
        if sub != sup {
            let _ = b.subtype(sub, sup);
        }
    }

    let mut roles: Vec<RoleId> = Vec::new();
    for i in 0..config.n_facts {
        let p0 = *types.choose(&mut rng).expect("non-empty");
        let p1 = *types.choose(&mut rng).expect("non-empty");
        let fid = b.fact_type(&format!("f{i}"), p0, p1).expect("fresh name");
        let ft = b.schema().fact_type(fid);
        roles.push(ft.first());
        roles.push(ft.second());
        let (r0, r1) = (ft.first(), ft.second());

        if flip(&mut rng, config.uniqueness_density) {
            let _ = b.unique([r0]);
        }
        if flip(&mut rng, config.mandatory_density) {
            let _ = b.mandatory(r0);
        }
        if flip(&mut rng, config.frequency_density) {
            let min = rng.gen_range(1..4);
            let max = min + rng.gen_range(0..3);
            let _ = b.frequency([if flip(&mut rng, 0.5) { r0 } else { r1 }], min, Some(max));
        }
        if p0 == p1 && flip(&mut rng, config.ring_density) {
            let n_kinds = rng.gen_range(1..3);
            let kinds: Vec<RingKind> =
                RingKind::ALL.choose_multiple(&mut rng, n_kinds).copied().collect();
            let _ = b.ring(fid, kinds);
        }
    }

    for _ in 0..(config.n_facts as f64 * config.exclusion_density).ceil() as usize {
        if roles.len() < 2 {
            break;
        }
        let n_args = rng.gen_range(2..4);
        let picked: Vec<RoleId> = roles.choose_multiple(&mut rng, n_args).copied().collect();
        let _ = b.exclusion_roles(picked);
    }
    for _ in 0..(config.n_facts as f64 * config.subset_density).ceil() as usize {
        if roles.len() < 2 {
            break;
        }
        let a = *roles.choose(&mut rng).expect("non-empty");
        let c = *roles.choose(&mut rng).expect("non-empty");
        if a != c {
            let _ = b.subset(RoleSeq::single(a), RoleSeq::single(c));
        }
    }
    if types.len() >= 2 && flip(&mut rng, 0.5) {
        let picked: Vec<ObjectTypeId> = types.choose_multiple(&mut rng, 2).copied().collect();
        let _ = b.exclusive_types(picked);
    }

    b.finish()
}

/// Generate a schema that stresses the constructs the DL translation
/// reports as *unmapped*: reflexive facts with random ring combinations
/// (compatible and incompatible alike), tight value constraints, and
/// frequency minima above one. The saturation-engine differential tests
/// feed on these — the tableau alone cannot decide most of what is doomed
/// here, so verdict attribution must come from the saturation side.
pub fn generate_beyond_dl(config: &GenConfig) -> Schema {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xBD1));
    let mut b = SchemaBuilder::new(format!("beyond_{}", config.seed));

    let mut types: Vec<ObjectTypeId> = Vec::new();
    for i in 0..config.n_types.max(2) {
        let ty = if flip(&mut rng, config.value_density.max(0.4)) {
            let card = rng.gen_range(1..5);
            let values: Vec<String> = (0..card).map(|j| format!("v{i}_{j}")).collect();
            b.value_type(
                &format!("T{i}"),
                Some(ValueConstraint::enumeration(values.iter().map(String::as_str))),
            )
            .expect("fresh name")
        } else {
            b.entity_type(&format!("T{i}")).expect("fresh name")
        };
        types.push(ty);
    }

    for i in 0..config.n_facts.max(1) {
        // Mostly reflexive facts, so ring constraints always have targets.
        let p0 = *types.choose(&mut rng).expect("non-empty");
        let p1 = if flip(&mut rng, 0.7) { p0 } else { *types.choose(&mut rng).expect("non-empty") };
        let fid = b.fact_type(&format!("f{i}"), p0, p1).expect("fresh name");
        let ft = b.schema().fact_type(fid);
        let (r0, r1) = (ft.first(), ft.second());
        if p0 == p1 && flip(&mut rng, config.ring_density.max(0.6)) {
            // Any subset of kinds, incompatible combinations included.
            let n_kinds = rng.gen_range(1..4);
            let kinds: Vec<RingKind> =
                RingKind::ALL.choose_multiple(&mut rng, n_kinds).copied().collect();
            let _ = b.ring(fid, kinds);
        }
        if flip(&mut rng, config.frequency_density.max(0.4)) {
            // Minima above one collide with tight value constraints (P4)
            // and single-role uniqueness (P7).
            let min = rng.gen_range(2..5);
            let max = min + rng.gen_range(0..3);
            let _ = b.frequency([if flip(&mut rng, 0.5) { r0 } else { r1 }], min, Some(max));
        }
        if flip(&mut rng, config.mandatory_density) {
            let _ = b.mandatory(r0);
        }
        if flip(&mut rng, config.uniqueness_density * 0.5) {
            let _ = b.unique([r0]);
        }
    }

    b.finish()
}

/// The canonical single-ring-fact scenario the paper's Fig. 11/12 examples
/// use: one entity type `Woman`, one reflexive fact `sister_of` read
/// *"is sister of"*, with `kinds` declared on it. Ground truth for the
/// per-kind verdict pins of the saturation differential suite.
pub fn ring_scenario(kinds: &[RingKind]) -> Schema {
    let mut b = SchemaBuilder::new("ring_scenario");
    let w = b.entity_type("Woman").expect("fresh name");
    let f = b
        .fact_type_full("sister_of", (w, Some("r1")), (w, Some("r2")), Some("is sister of"))
        .expect("fresh name");
    b.ring(f, kinds.iter().copied()).expect("reflexive fact");
    b.finish()
}

/// A frequency-starvation scenario (Pattern 4 shape): a value type with
/// `card` admissible values played against a frequency constraint
/// `FC(min..max)` on the co-role. Unsatisfiable iff `card < min as usize`.
pub fn frequency_value_scenario(card: usize, min: u32, max: Option<u32>) -> Schema {
    let mut b = SchemaBuilder::new("freq_value");
    let a = b.entity_type("A").expect("fresh name");
    let values: Vec<String> = (0..card).map(|j| format!("x{j}")).collect();
    let v = b
        .value_type("V", Some(ValueConstraint::enumeration(values.iter().map(String::as_str))))
        .expect("fresh name");
    let f = b.fact_type("f", a, v).expect("fresh name");
    let r = b.schema().fact_type(f).first();
    b.frequency([r], min, max).expect("valid fc");
    b.finish()
}

/// A deterministic schema whose single doomed type `Doomed` sits under
/// exactly `k` **independent** contradictions: for each `i < k`, `Doomed`
/// is a subtype of both `A{i}` and `B{i}`, which are declared exclusive.
/// All supertypes share one `Root`, so ORM's implicit type exclusions
/// stay out of play and the minimal-unsat-core family of `Doomed` is
/// exactly the `k` triples {`Doomed ⊑ A{i}`, `Doomed ⊑ B{i}`,
/// `exclusive(A{i}, B{i})`} — the ground truth the MUS-enumeration tests
/// and the figure pins assert against. `k = 0` yields a satisfiable
/// schema.
pub fn multi_contradiction(k: usize) -> (Schema, ObjectTypeId) {
    let mut b = SchemaBuilder::new(format!("multi_{k}"));
    let root = b.entity_type("Root").expect("fresh name");
    let doomed = b.entity_type("Doomed").expect("fresh name");
    b.subtype(doomed, root).expect("valid link");
    for i in 0..k {
        let a = b.entity_type(&format!("A{i}")).expect("fresh name");
        let c = b.entity_type(&format!("B{i}")).expect("fresh name");
        b.subtype(a, root).expect("valid link");
        b.subtype(c, root).expect("valid link");
        b.subtype(doomed, a).expect("valid link");
        b.subtype(doomed, c).expect("valid link");
        b.exclusive_types([a, c]).expect("valid constraint");
    }
    (b.finish(), doomed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::small(7));
        let c = generate(&GenConfig::small(7));
        assert_eq!(a.object_type_count(), c.object_type_count());
        assert_eq!(a.constraint_count(), c.constraint_count());
        assert_eq!(
            a.constraints().map(|(_, x)| format!("{x:?}")).collect::<Vec<_>>(),
            c.constraints().map(|(_, x)| format!("{x:?}")).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::medium(1));
        let c = generate(&GenConfig::medium(2));
        // Sizes match but the constraint mix should differ.
        let fmt = |s: &Schema| s.constraints().map(|(_, x)| format!("{x:?}")).collect::<Vec<_>>();
        assert_ne!(fmt(&a), fmt(&c));
    }

    #[test]
    fn sized_config_tracks_target() {
        let s = generate_clean(&GenConfig::sized(3, 300));
        assert!(s.size() >= 150, "got {}", s.size());
    }

    #[test]
    fn clean_schemas_have_forest_subtyping() {
        for seed in 0..10 {
            let s = generate_clean(&GenConfig::medium(seed));
            let idx = s.index();
            for (ty, _) in s.object_types() {
                assert!(idx.direct_supers(ty).len() <= 1, "seed {seed}: not a forest");
                assert!(!idx.on_subtype_cycle(ty), "seed {seed}: cycle");
            }
        }
    }

    #[test]
    fn multi_contradiction_shape() {
        let (s, doomed) = multi_contradiction(3);
        // Root + Doomed + 3 exclusive pairs.
        assert_eq!(s.object_type_count(), 8);
        assert_eq!(s.constraint_count(), 3);
        // Doomed is under Root and all six pair members.
        assert_eq!(s.index().direct_supers(doomed).len(), 7);
        let (clean, _) = multi_contradiction(0);
        assert_eq!(clean.constraint_count(), 0);
    }

    #[test]
    fn clean_schema_constraints_are_structurally_valid() {
        // The builder would have panicked on expect() otherwise; double
        // check some global properties.
        let s = generate_clean(&GenConfig::large(42));
        assert!(s.constraint_count() > 0);
        assert!(s.fact_type_count() == 250);
    }
}
