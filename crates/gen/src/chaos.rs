//! # Fault-injection harness for the reasoning service
//!
//! Drives a [`ReasonerService`] the way a hostile day in production
//! would: many concurrent editor sessions, each running a deterministic
//! edit/query script seasoned with injected faults —
//!
//! * **cancellations at metered step counts**
//!   ([`ExecCx::cancel_after_steps`] — deterministic, unlike wall-clock
//!   races),
//! * **deadline storms** (batches of requests whose deadlines are
//!   already hopeless or trip mid-proof),
//! * **starved budgets** (requests degraded to a handful of steps),
//! * **worker panics** (poisoned items inside the parallel fan-out, and
//!   poisoned sessions inside the service's lock-critical sections),
//! * **snapshot sabotage** (mid-write truncations and bit-flips of the
//!   persisted cache blob),
//! * **saturation-engine storms** (the graph-saturation engine re-checked
//!   under pre-cancelled, pre-expired and starved contexts, warm- and
//!   cold-cache, against its own sequential unlimited reference).
//!
//! After the storm, every *decided* verdict the service ever returned is
//! compared against a fresh sequential reference pass over the same
//! schema. The contract under every injected fault: **zero wrong
//! verdicts, zero hangs, zero cross-session poisoning** — a faulted
//! request may come back `Cancelled`, `DeadlineExceeded`,
//! `BudgetExhausted` or shed ([`Overloaded`]), but never with a verdict
//! the reference pass refutes, and never taking a sibling session down
//! with it.
//!
//! Mid-storm edits are *tautological* subtype additions (`T ⊑ T`): they
//! exercise the write lock, the TBox delta log and the cache's
//! revalidation machinery without changing any satisfiability verdict,
//! so the sequential reference stays sound for the whole run.
//!
//! Everything is deterministic in [`ChaosConfig::seed`] except thread
//! interleaving; the report's *floors* (at least one shed, downgrade,
//! isolated panic, …) are guaranteed by dedicated waves rather than by
//! racing, so the exit gates of the bench battery never flake.

use crate::GenConfig;
use orm_dl::par::fan_out_cx;
use orm_dl::tableau::DlOutcome;
use orm_dl::{
    CacheStats, ExecCx, SaturationEngine, SaturationOutcome, SaturationShards, SearchOutcome,
};
use orm_model::{ObjectTypeId, RoleId, Schema};
use orm_serve::{Overloaded, ReasonerService, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Shape of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed; equal seeds give equal schemas and scripts.
    pub seed: u64,
    /// Concurrent sessions in the storm phase.
    pub sessions: usize,
    /// Script steps per session.
    pub steps_per_session: usize,
    /// Full step budget (also the reference pass's budget).
    pub budget: u64,
    /// Shape of the generated schema under test.
    pub gen: GenConfig,
    /// Admission thresholds for the primary service under storm.
    pub service: ServiceConfig,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC0A5,
            sessions: 64,
            steps_per_session: 6,
            budget: 100_000,
            gen: GenConfig::medium(0xC0A5),
            service: ServiceConfig {
                max_inflight: 8,
                soft_inflight: 3,
                full_steps: 100_000,
                degraded_steps: 500,
                min_deadline: Duration::from_micros(50),
            },
        }
    }
}

/// What the storm did and how the service held up.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Sessions driven concurrently.
    pub sessions: usize,
    /// Query attempts across all phases.
    pub queries: usize,
    /// Requests that came back with any outcome (not shed).
    pub served: usize,
    /// Requests refused at admission ([`Overloaded`]).
    pub shed: usize,
    /// Requests admitted at a degraded budget (from the merged stats).
    pub downgraded: u64,
    /// Served requests that ended in an honest interrupt
    /// (`Cancelled` / `DeadlineExceeded` / `BudgetExhausted`).
    pub interrupted: usize,
    /// Served requests that returned a definitive `Sat`/`Unsat`.
    pub decided: usize,
    /// Decided verdicts that contradict the sequential reference pass —
    /// the headline number; anything nonzero is a soundness bug.
    pub disagreements: usize,
    /// Tautological edits applied mid-storm.
    pub edits: usize,
    /// Panics injected and contained (fan-out items + poisoned
    /// sessions) without taking a sibling or the service down.
    pub panics_isolated: usize,
    /// Sabotaged snapshot blobs rejected by restore.
    pub corrupt_rejected: usize,
    /// Clean snapshot restores that succeeded.
    pub restores: usize,
    /// Entries installed by the clean restore.
    pub restored_entries: usize,
    /// Decided verdicts re-checked against the reference *after* the
    /// clean restore (all must agree; disagreements count above).
    pub post_restore_checked: usize,
    /// Saturation-engine checks run in the saturation storm phase.
    pub saturation_runs: usize,
    /// Saturation checks that ended in an honest interrupt
    /// (`Cancelled` / `DeadlineExceeded` / `BudgetExhausted`).
    pub saturation_interrupted: usize,
    /// Saturation verdicts contradicting the sequential unlimited
    /// saturation reference — like [`disagreements`](Self::disagreements),
    /// anything nonzero is a soundness bug.
    pub saturation_disagreements: usize,
    /// Cache counters merged across every service the harness touched.
    pub stats: CacheStats,
}

/// The deterministic reference: every type and role verdict from a
/// fresh, sequential, full-budget pass over its own translation.
struct Reference {
    types: Vec<(ObjectTypeId, DlOutcome)>,
    roles: Vec<(RoleId, DlOutcome)>,
}

impl Reference {
    fn compute(schema: &Schema, budget: u64) -> Reference {
        let t = orm_dl::translate(schema);
        Reference { types: t.type_sweep(schema, budget), roles: t.role_sweep(schema, budget) }
    }

    /// Does `got` contradict the reference? Only definitive verdicts on
    /// both sides can disagree; a reference `ResourceLimit` vouches for
    /// nothing.
    fn contradicts(expected: DlOutcome, got: SearchOutcome) -> bool {
        matches!(
            (expected, got),
            (DlOutcome::Sat, SearchOutcome::Unsat) | (DlOutcome::Unsat, SearchOutcome::Sat)
        )
    }
}

/// Saturation-engine analogue of [`Reference::contradicts`]: only a
/// `Sat`/`Unsat` pair on the same target can disagree; an undecided
/// reference (`BudgetExhausted` on a graph past its node cap) vouches
/// for nothing.
/// One target of the saturation storm: a type or a role probe.
#[derive(Clone, Copy)]
enum SaturationProbe {
    Type(ObjectTypeId),
    Role(RoleId),
}

fn saturation_contradicts(expected: &SaturationOutcome, got: &SaturationOutcome) -> bool {
    matches!(
        (expected, got),
        (SaturationOutcome::Sat(_), SaturationOutcome::Unsat(_))
            | (SaturationOutcome::Unsat(_), SaturationOutcome::Sat(_))
    )
}

/// One session's verdict observations, judged after the storm.
struct Observation {
    type_verdicts: Vec<(usize, SearchOutcome)>,
    role_verdicts: Vec<(usize, SearchOutcome)>,
    served: usize,
    shed: usize,
    interrupted: usize,
    edits: usize,
}

fn run_session(
    service: &ReasonerService,
    reference: &Reference,
    budget: u64,
    mut rng: StdRng,
    steps: usize,
) -> Observation {
    let mut obs = Observation {
        type_verdicts: Vec::new(),
        role_verdicts: Vec::new(),
        served: 0,
        shed: 0,
        interrupted: 0,
        edits: 0,
    };
    for _ in 0..steps {
        let flavor = rng.gen_range(0u32..10);
        if flavor == 9 {
            // Tautological edit: exercises the write lock and the delta
            // machinery, provably changes no verdict.
            let (ty, _) = reference.types[rng.gen_range(0..reference.types.len())];
            service.edit(|e| e.add_subtype(ty, ty));
            obs.edits += 1;
            continue;
        }
        let cx = match flavor {
            // Injected cancellation at a metered step count: trips once
            // the *service-wide* meter advances a little further.
            6 => ExecCx::unlimited()
                .cancel_after_steps(service.meter().steps() + rng.gen_range(1..512)),
            // Deadline storm: hopeless or trips mid-proof.
            7 => ExecCx::unlimited().with_timeout(Duration::from_micros(rng.gen_range(0..400))),
            // Starved budget: an honest BudgetExhausted at worst.
            8 => ExecCx::with_steps(rng.gen_range(1..32)),
            _ => ExecCx::with_steps(budget),
        };
        let on_role = rng.gen_bool(0.4) && !reference.roles.is_empty();
        let outcome = if on_role {
            let i = rng.gen_range(0..reference.roles.len());
            service.check_role(reference.roles[i].0, &cx).map(|v| (i, true, v))
        } else {
            let i = rng.gen_range(0..reference.types.len());
            service.check_type(reference.types[i].0, &cx).map(|v| (i, false, v))
        };
        match outcome {
            Err(Overloaded) => obs.shed += 1,
            Ok((i, is_role, verdict)) => {
                obs.served += 1;
                match verdict {
                    SearchOutcome::Sat | SearchOutcome::Unsat => {
                        if is_role {
                            obs.role_verdicts.push((i, verdict));
                        } else {
                            obs.type_verdicts.push((i, verdict));
                        }
                    }
                    _ => obs.interrupted += 1,
                }
            }
        }
    }
    obs
}

/// Run the full battery against `cfg`'s schema-independent script. See
/// the [module docs](self) for the phases and the contract.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let schema = crate::generate(&cfg.gen);
    let reference = Reference::compute(&schema, cfg.budget);
    let mut report = ChaosReport { sessions: cfg.sessions, ..ChaosReport::default() };

    // -- Phase 1: concurrent storm over one service -----------------------
    let service = ReasonerService::new(&schema, cfg.service);
    let observations: Vec<Observation> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|i| {
                let rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let (service, reference) = (&service, &reference);
                scope.spawn(move || {
                    run_session(service, reference, cfg.budget, rng, cfg.steps_per_session)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("session thread poisoned")).collect()
    });
    for obs in observations {
        report.queries += obs.served + obs.shed;
        report.served += obs.served;
        report.shed += obs.shed;
        report.interrupted += obs.interrupted;
        report.edits += obs.edits;
        for (i, got) in obs.type_verdicts {
            report.decided += 1;
            report.disagreements += usize::from(Reference::contradicts(reference.types[i].1, got));
        }
        for (i, got) in obs.role_verdicts {
            report.decided += 1;
            report.disagreements += usize::from(Reference::contradicts(reference.roles[i].1, got));
        }
    }

    // -- Phase 2: guaranteed admission floors -----------------------------
    // Thread interleaving on a small box may never organically exceed the
    // storm thresholds, so the shed/downgrade floors the exit gate
    // asserts are produced by dedicated drain/degrade services over the
    // same schema (their stats are merged into the report).
    let drain = ReasonerService::new(&schema, ServiceConfig { max_inflight: 0, ..cfg.service });
    let ty0 = reference.types[0].0;
    assert_eq!(drain.check_type(ty0, &ExecCx::with_steps(cfg.budget)), Err(Overloaded));
    report.queries += 1;
    report.shed += 1;

    let degrade = ReasonerService::new(
        &schema,
        ServiceConfig { soft_inflight: 0, degraded_steps: 1, ..cfg.service },
    );
    let degraded_verdict = degrade
        .check_type(ty0, &ExecCx::with_steps(cfg.budget))
        .expect("degraded request must be admitted");
    report.queries += 1;
    report.served += 1;
    match degraded_verdict {
        SearchOutcome::Sat | SearchOutcome::Unsat => {
            report.decided += 1;
            report.disagreements +=
                usize::from(Reference::contradicts(reference.types[0].1, degraded_verdict));
        }
        _ => report.interrupted += 1,
    }

    // -- Phase 3: worker panics stay contained ----------------------------
    // Poisoned items inside the parallel fan-out: siblings keep their
    // verdicts, the batch reports the panics, nothing propagates.
    let type_ids: Vec<usize> = (0..reference.types.len()).collect();
    let cx = ExecCx::with_steps(cfg.budget);
    let batch = fan_out_cx(&type_ids, 4, &cx, |_, &i| {
        assert!(i % 5 != 3, "chaos-poisoned item {i}");
        service.check_type(reference.types[i].0, &ExecCx::with_steps(cfg.budget))
    });
    let expected_poisoned = type_ids.iter().filter(|&&i| i % 5 == 3).count() as u64;
    assert_eq!(batch.stats.panicked, expected_poisoned, "panic isolation miscounted");
    assert_eq!(batch.interrupt, None, "injected panics cancelled the batch");
    for (i, result) in batch.results.iter().enumerate() {
        match result {
            None => assert!(i % 5 == 3, "sibling of a poisoned item lost its verdict"),
            Some(Ok(v @ (SearchOutcome::Sat | SearchOutcome::Unsat))) => {
                report.decided += 1;
                report.served += 1;
                report.queries += 1;
                report.disagreements +=
                    usize::from(Reference::contradicts(reference.types[i].1, *v));
            }
            Some(Ok(_)) => {
                report.interrupted += 1;
                report.served += 1;
                report.queries += 1;
            }
            Some(Err(Overloaded)) => {
                report.shed += 1;
                report.queries += 1;
            }
        }
    }
    report.panics_isolated += expected_poisoned as usize;

    // Poisoned sessions inside the service's lock-critical sections: a
    // panicking reader and a panicking writer must leave the service
    // serving correct verdicts to everyone else.
    for _ in 0..2 {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            service.with_translation(|_| panic!("chaos-poisoned read session"))
        }));
        assert!(caught.is_err());
        report.panics_isolated += 1;
    }
    let caught =
        catch_unwind(AssertUnwindSafe(|| service.edit(|_| panic!("chaos-poisoned edit session"))));
    assert!(caught.is_err());
    report.panics_isolated += 1;
    let after_poison = service
        .check_type(ty0, &ExecCx::with_steps(cfg.budget))
        .expect("service died with a poisoned session");
    report.queries += 1;
    report.served += 1;
    if matches!(after_poison, SearchOutcome::Sat | SearchOutcome::Unsat) {
        report.decided += 1;
        report.disagreements +=
            usize::from(Reference::contradicts(reference.types[0].1, after_poison));
    } else {
        report.interrupted += 1;
    }

    // -- Phase 4: snapshot sabotage ---------------------------------------
    // The storm service's TBox has grown by a nondeterministic
    // interleaving of session edits, so *its* snapshot could only ever
    // restore into a process that replayed the same log — exactly what
    // the provenance gate enforces. The persistence phases therefore use
    // a deterministically warmed service over the pristine schema.
    let persist = ReasonerService::new(&schema, cfg.service);
    let full = ExecCx::with_steps(cfg.budget);
    persist.type_sweep(&schema, &full).expect("idle service shed a sweep");
    persist.role_sweep(&schema, &full).expect("idle service shed a sweep");
    let blob = persist.snapshot();
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xDEAD));
    let mut saboteurs: Vec<Vec<u8>> = vec![
        blob[..blob.len() / 3].to_vec(), // torn write: tail lost
        blob[..8].to_vec(),              // torn write: header only
        Vec::new(),                      // empty file
    ];
    for _ in 0..4 {
        let mut flipped = blob.clone();
        let pos = rng.gen_range(0..flipped.len());
        flipped[pos] ^= 1 << rng.gen_range(0..8);
        saboteurs.push(flipped);
    }
    let mut sabotage_stats = CacheStats::default();
    for bad in &saboteurs {
        let victim = ReasonerService::new(&schema, cfg.service);
        if victim.restore(bad).is_err() {
            report.corrupt_rejected += 1;
            // A rejected restore degrades to a cold start that still
            // answers correctly.
            let verdict = victim
                .check_type(ty0, &ExecCx::with_steps(cfg.budget))
                .expect("cold victim refused a query");
            if matches!(verdict, SearchOutcome::Sat | SearchOutcome::Unsat) {
                report.decided += 1;
                report.disagreements +=
                    usize::from(Reference::contradicts(reference.types[0].1, verdict));
            }
            report.queries += 1;
            report.served += 1;
        }
        // (A flip the checksum cannot see — e.g. inside ignored padding —
        // does not exist in this format; but if a flip happened to keep
        // the blob valid *and* installable, decided verdicts are still
        // checked below by the clean-restore sweep.)
        sabotage_stats = sabotage_stats.merge(victim.stats());
    }

    // -- Phase 5: clean warm restart --------------------------------------
    let restarted = ReasonerService::new(&schema, cfg.service);
    let restored = restarted.restore(&blob).expect("clean snapshot rejected");
    report.restores += 1;
    report.restored_entries = restored.entries;
    for (i, (ty, expected)) in reference.types.iter().enumerate() {
        let verdict = restarted
            .check_type(*ty, &ExecCx::with_steps(cfg.budget))
            .expect("restored service refused a query");
        report.queries += 1;
        report.served += 1;
        if matches!(verdict, SearchOutcome::Sat | SearchOutcome::Unsat) {
            report.decided += 1;
            report.post_restore_checked += 1;
            report.disagreements +=
                usize::from(Reference::contradicts(reference.types[i].1, verdict));
        } else {
            report.interrupted += 1;
            assert_eq!(
                *expected,
                DlOutcome::ResourceLimit,
                "restored service starved where the reference decided"
            );
        }
    }
    // Additions on top of the restored state revalidate against the
    // delta log instead of clearing — the warm restart survives the
    // first post-restart edit.
    restarted.edit(|e| e.add_subtype(ty0, ty0));
    restarted
        .check_type(ty0, &ExecCx::with_steps(cfg.budget))
        .expect("restored service refused a post-edit query");
    report.queries += 1;
    report.served += 1;
    assert_eq!(
        restarted.stats().invalidations,
        0,
        "a post-restore addition cleared the restored shards"
    );

    // -- Phase 6: saturation-engine storm ---------------------------------
    // The third engine gets its own storm over the same schema. The DL
    // reference above is useless here — `generate` schemas carry ring,
    // value and frequency constructs the translation reports as unmapped —
    // so decided verdicts are judged against a fresh sequential unlimited
    // saturation pass instead. Two storm engines: one sharing the
    // reference's cache (every hit must reproduce the recorded verdict)
    // and one cold (every verdict recomputed from scratch). All injected
    // interrupts are metered or pre-expired, never wall-clock races, so
    // the storm's counters are exactly reproducible from the seed.
    let sat_cache = Arc::new(SaturationShards::new());
    let sat_ref_engine = SaturationEngine::with_cache(&schema, Arc::clone(&sat_cache));
    let unlimited = ExecCx::unlimited();
    let sat_ref_types = sat_ref_engine.type_sweep(&unlimited);
    let sat_ref_roles = sat_ref_engine.role_sweep(&unlimited);
    let warm = SaturationEngine::with_cache(&schema, Arc::clone(&sat_cache));
    let cold = SaturationEngine::new(&schema);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x5A70));
    for (pass, engine) in [&warm, &cold].into_iter().enumerate() {
        let typed = sat_ref_types.iter().map(|(ty, e)| (SaturationProbe::Type(*ty), e));
        let roled = sat_ref_roles.iter().map(|(r, e)| (SaturationProbe::Role(*r), e));
        for (i, (probe, expected)) in typed.chain(roled).enumerate() {
            let flavor = (i + pass) % 4;
            let cx = match flavor {
                // Already-cancelled context: must interrupt before any
                // cache probe or verdict.
                0 => {
                    let cx = ExecCx::unlimited();
                    cx.cancel();
                    cx
                }
                // Pre-expired deadline: ditto, deterministically.
                1 => ExecCx::unlimited().with_timeout(Duration::ZERO),
                // Starved metered budget: an honest BudgetExhausted at
                // worst.
                2 => ExecCx::with_steps(rng.gen_range(1..24)),
                _ => ExecCx::unlimited(),
            };
            let got = match probe {
                SaturationProbe::Type(ty) => engine.check_type(ty, &cx),
                SaturationProbe::Role(r) => engine.check_role(r, &cx),
            };
            report.saturation_runs += 1;
            match flavor {
                0 => assert!(
                    matches!(got, SaturationOutcome::Cancelled),
                    "pre-cancelled saturation check returned {got:?}"
                ),
                1 => assert!(
                    matches!(got, SaturationOutcome::DeadlineExceeded),
                    "pre-expired saturation check returned {got:?}"
                ),
                _ => {}
            }
            match &got {
                SaturationOutcome::Sat(_) | SaturationOutcome::Unsat(_) => {
                    report.saturation_disagreements +=
                        usize::from(saturation_contradicts(expected, &got));
                }
                _ => report.saturation_interrupted += 1,
            }
        }
    }

    // Merge every service's counters into the report.
    report.stats = service
        .stats()
        .merge(drain.stats())
        .merge(degrade.stats())
        .merge(persist.stats())
        .merge(sabotage_stats)
        .merge(restarted.stats());
    report.downgraded = report.stats.downgrades;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full battery at a smaller scale than the bench runs it: every
    /// injected fault class fires, and the contract holds.
    #[test]
    fn chaos_battery_holds_the_contract() {
        let cfg = ChaosConfig {
            sessions: 8,
            steps_per_session: 3,
            gen: GenConfig::small(7),
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        assert_eq!(report.disagreements, 0, "wrong verdict under fault injection: {report:?}");
        assert_eq!(
            report.saturation_disagreements, 0,
            "wrong saturation verdict under fault injection: {report:?}"
        );
        assert!(report.saturation_runs >= 1, "the saturation storm never ran");
        assert!(report.saturation_interrupted >= 1, "no saturation check was interrupted");
        assert!(report.shed >= 1, "no request was ever shed");
        assert!(report.downgraded >= 1, "no request was ever downgraded");
        assert!(report.panics_isolated >= 1, "no panic was injected");
        assert!(report.corrupt_rejected >= 1, "no sabotage was rejected");
        assert_eq!(report.restores, 1);
        assert!(report.restored_entries >= 1, "storm left nothing to snapshot");
        assert!(report.post_restore_checked >= 1);
        assert_eq!(report.stats.corrupt_rejected as usize, report.corrupt_rejected);
        assert!(report.stats.restores >= 1);
        assert!(report.stats.snapshots >= 1);
        assert_eq!(report.queries, report.served + report.shed);
    }

    /// Determinism in everything the exit gate asserts: two runs with
    /// the same seed produce the same floors (thread interleaving may
    /// shift organic shed counts, so only the guaranteed floors and the
    /// single-threaded phases are compared exactly).
    #[test]
    fn chaos_floors_are_deterministic() {
        let cfg = ChaosConfig {
            sessions: 2,
            steps_per_session: 2,
            budget: 30_000,
            gen: GenConfig::small(11),
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.disagreements, b.disagreements);
        assert_eq!(a.panics_isolated, b.panics_isolated);
        assert_eq!(a.corrupt_rejected, b.corrupt_rejected);
        assert_eq!(a.restored_entries, b.restored_entries);
        assert_eq!(a.saturation_runs, b.saturation_runs);
        assert_eq!(a.saturation_interrupted, b.saturation_interrupted);
        assert_eq!(a.saturation_disagreements, b.saturation_disagreements);
    }
}
