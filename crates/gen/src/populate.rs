//! Random and bulk population generation.
//!
//! Two generators feed the bulk-conformance work:
//!
//! * [`populate_random`] — conformity-leaning random populations over
//!   arbitrary (e.g. [`crate::generate`]d) schemas, for the differential
//!   property tests that pin the compiled `CheckPlan` to the
//!   per-violation validator. Tuples drag their values into the player
//!   extents and up the subtype chains, and value-constrained types draw
//!   from their admissible values — so populations are mostly conforming,
//!   with enough residual randomness (counting violations, missing
//!   mandatory plays, improper subtypes) to exercise the violation paths
//!   too.
//! * [`bulk_workload`] — a fixed order-processing schema scaled to
//!   millions of tuples, with **injected violation faults** whose kinds
//!   and count are known. This is what the `bulk_conformance` bench
//!   scenario times: a large, almost-clean population where a compiled
//!   plan's full-column scans shine and each injected fault must still
//!   surface.
//!
//! All generation is deterministic in the seed.

use crate::GenConfig;
use orm_model::{ObjectTypeId, RoleSeq, Schema, SchemaBuilder, Value, ValueConstraint};
use orm_population::Population;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters for [`populate_random`].
#[derive(Clone, Debug)]
pub struct PopConfig {
    /// RNG seed; equal seeds give equal populations.
    pub seed: u64,
    /// Approximate number of fact tuples to generate (spread round-robin
    /// over the schema's fact types).
    pub rows: usize,
}

impl PopConfig {
    /// A population of about `rows` tuples.
    pub fn sized(seed: u64, rows: usize) -> PopConfig {
        PopConfig { seed, rows }
    }
}

/// Admissible values of `ty` under its own and all inherited value
/// constraints, or `None` when unconstrained.
fn value_pool(
    schema: &Schema,
    idx: &orm_model::SchemaIndex,
    ty: ObjectTypeId,
) -> Option<Vec<Value>> {
    let mut pool: Option<ValueConstraint> = None;
    for sup in idx.supers_refl(ty) {
        if let Some(vc) = schema.object_type(sup).value_constraint() {
            pool = Some(match pool {
                Some(acc) => acc.intersect(vc),
                None => vc.clone(),
            });
        }
    }
    pool.map(|vc| vc.iter_values().take(64).collect())
}

/// Add `value` to `ty`'s extent and to every (transitive) supertype's —
/// the conformity-leaning move: a tuple's values are real instances of
/// the whole player chain.
fn add_with_supers(
    pop: &mut Population,
    idx: &orm_model::SchemaIndex,
    ty: ObjectTypeId,
    value: &Value,
) {
    for sup in idx.supers_refl(ty) {
        pop.add_instance(sup, value.clone());
    }
}

/// Generate a mostly-conforming random population of `schema` (see the
/// [module docs](self)).
pub fn populate_random(schema: &Schema, config: &PopConfig) -> Population {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xB0B));
    let idx = schema.index();
    let mut pop = Population::new();
    let types: Vec<ObjectTypeId> = schema.object_types().map(|(id, _)| id).collect();
    let pools: Vec<Option<Vec<Value>>> =
        types.iter().map(|&ty| value_pool(schema, &idx, ty)).collect();

    // Fresh-or-reused value for one role player.
    let pick = |rng: &mut StdRng, pop: &Population, ty: ObjectTypeId| -> Value {
        if let Some(pool) = &pools[ty.index()] {
            if let Some(v) = pool.as_slice().choose(rng) {
                return v.clone();
            }
        }
        let extent = pop.extent(ty);
        if !extent.is_empty() && rng.gen_bool(0.6) {
            let skip = rng.gen_range(0..extent.len());
            if let Some(v) = extent.iter().nth(skip) {
                return v.clone();
            }
        }
        Value::str(format!("t{}_{}", ty.index(), rng.gen_range(0..1_000_000)))
    };

    // A few extent-only instances per type: mandatory/totality targets.
    for (i, &ty) in types.iter().enumerate() {
        for _ in 0..rng.gen_range(0..3) {
            let v = pick(&mut rng, &pop, ty);
            let _ = i;
            add_with_supers(&mut pop, &idx, ty, &v);
        }
    }

    let facts: Vec<_> = schema.fact_types().map(|(id, ft)| (id, ft.roles())).collect();
    if facts.is_empty() {
        return pop;
    }
    for row in 0..config.rows {
        let (fid, roles) = &facts[row % facts.len()];
        let a = {
            let ty = schema.player(roles[0]);
            let v = pick(&mut rng, &pop, ty);
            add_with_supers(&mut pop, &idx, ty, &v);
            v
        };
        let b = {
            let ty = schema.player(roles[1]);
            let v = pick(&mut rng, &pop, ty);
            add_with_supers(&mut pop, &idx, ty, &v);
            v
        };
        pop.add_fact(*fid, a, b);
        // Occasionally leave a dangling tuple: conformity violations must
        // show up in the differential comparison too.
        if rng.gen_bool(0.05) {
            pop.add_fact(
                *fid,
                Value::str(format!("ghost_{row}")),
                Value::str(format!("ghost_{row}_b")),
            );
        }
    }
    pop
}

/// The kinds of violation fault [`bulk_workload`] injects, cycled in this
/// order.
pub const BULK_FAULT_KINDS: &[&str] =
    &["mandatory", "uniqueness", "subtype_subset", "value_domain", "conformity", "role_exclusion"];

/// A bulk-conformance workload: a fixed schema, a large mostly-clean
/// population, and the number of faults injected into it.
#[derive(Debug)]
pub struct BulkWorkload {
    /// The order-processing schema (see [`bulk_workload`]).
    pub schema: Schema,
    /// The generated population (~`rows` fact tuples plus extents).
    pub population: Population,
    /// How many violation faults were injected (each a distinct victim
    /// order, cycling through [`BULK_FAULT_KINDS`]).
    pub faults_injected: usize,
}

/// Build the bulk order-processing workload: `rows` fact tuples (4 per
/// order) over a schema exercising mandatory, uniqueness, subtyping
/// (proper + subset), value, subset- and exclusion-role constraints, with
/// `faults` injected violations of known kinds.
///
/// The schema: `PremiumCustomer ⊆ Customer`; `Order` places (unique +
/// mandatory) a `Customer`, has (unique + mandatory) a `Status` drawn
/// from a four-value enumeration, ships `Product`s, and optionally goes
/// out via `express` or `pickup` to a `Courier` — those two roles are
/// exclusive, and express shipping requires shipping something (role
/// subset into `ships`). Value families use disjoint prefixes, keeping
/// ORM's implicit type exclusion clean.
pub fn bulk_workload(rows: usize, faults: usize, seed: u64) -> BulkWorkload {
    let mut b = SchemaBuilder::new("bulk_orders");
    let customer = b.entity_type("Customer").expect("fresh name");
    let premium = b.entity_type("PremiumCustomer").expect("fresh name");
    b.subtype(premium, customer).expect("valid subtype");
    let order = b.entity_type("Order").expect("fresh name");
    let product = b.entity_type("Product").expect("fresh name");
    let status = b
        .value_type(
            "Status",
            Some(ValueConstraint::enumeration(["placed", "paid", "shipped", "delivered"])),
        )
        .expect("fresh name");
    let courier = b.entity_type("Courier").expect("fresh name");

    let f_places = b.fact_type("places", order, customer).expect("fresh name");
    let f_status = b.fact_type("has_status", order, status).expect("fresh name");
    let f_ships = b.fact_type("ships", order, product).expect("fresh name");
    let f_express = b.fact_type("express_via", order, courier).expect("fresh name");
    let f_pickup = b.fact_type("pickup_via", order, courier).expect("fresh name");

    let places_r0 = b.schema().fact_type(f_places).first();
    let status_r0 = b.schema().fact_type(f_status).first();
    let ships_r0 = b.schema().fact_type(f_ships).first();
    let express_r0 = b.schema().fact_type(f_express).first();
    let pickup_r0 = b.schema().fact_type(f_pickup).first();
    b.unique([places_r0]).expect("valid uc");
    b.mandatory(places_r0).expect("valid mandatory");
    b.unique([status_r0]).expect("valid uc");
    b.mandatory(status_r0).expect("valid mandatory");
    b.exclusion_roles([express_r0, pickup_r0]).expect("valid exclusion");
    b.subset(RoleSeq::single(express_r0), RoleSeq::single(ships_r0)).expect("valid subset");
    let schema = b.finish();

    let statuses = ["placed", "paid", "shipped", "delivered"];
    let n_orders = (rows / 4).max(1);
    let n_customers = (n_orders / 8).clamp(2, 50_000);
    let n_products = (n_orders / 16).clamp(1, 20_000);
    let n_couriers = 16usize;

    let mut pop = Population::new();
    for s in statuses {
        pop.add_instance(status, s);
    }
    for c in 0..n_customers {
        pop.add_instance(customer, format!("c{c}"));
        // Every 8th customer is premium — non-empty and proper.
        if c % 8 == 0 {
            pop.add_instance(premium, format!("c{c}"));
        }
    }
    for p in 0..n_products {
        pop.add_instance(product, format!("p{p}"));
    }
    for k in 0..n_couriers {
        pop.add_instance(courier, format!("k{k}"));
    }
    for o in 0..n_orders {
        let oid = format!("o{o}");
        pop.add_instance(order, oid.clone());
        pop.add_fact(f_places, oid.clone(), format!("c{}", o % n_customers));
        pop.add_fact(f_status, oid.clone(), statuses[o % statuses.len()]);
        pop.add_fact(f_ships, oid.clone(), format!("p{}", o % n_products));
        // Fourth tuple: express, pickup, or a second shipped product.
        match o % 3 {
            0 => pop.add_fact(f_express, oid, format!("k{}", o % n_couriers)),
            1 => pop.add_fact(f_pickup, oid, format!("k{}", o % n_couriers)),
            _ => pop.add_fact(f_ships, oid, format!("p{}", (o + 1) % n_products)),
        }
    }

    // Inject faults: one distinct victim order per fault, cycling through
    // the kinds, so injections never interact. Victims are drawn without
    // replacement so they spread deterministically over the population.
    let faults = faults.min(n_orders);
    let all_orders: Vec<usize> = (0..n_orders).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let victims: Vec<usize> = all_orders.choose_multiple(&mut rng, faults).copied().collect();
    for (i, &o) in victims.iter().enumerate() {
        let oid = Value::str(format!("o{o}"));
        let st = Value::str(statuses[o % statuses.len()]);
        match BULK_FAULT_KINDS[i % BULK_FAULT_KINDS.len()] {
            // The order loses its status: its mandatory role goes unplayed.
            "mandatory" => {
                pop.remove_fact(f_status, &oid, &st);
            }
            // A second status for one order: uniqueness group of size 2.
            "uniqueness" => {
                let other = statuses[(o + 1) % statuses.len()];
                pop.add_fact(f_status, oid, other);
            }
            // A premium customer that is not a customer at all.
            "subtype_subset" => {
                pop.add_instance(premium, format!("stray_premium_{i}"));
            }
            // A status outside the enumeration.
            "value_domain" => {
                pop.add_instance(status, format!("bogus_status_{i}"));
            }
            // A shipment of a product nobody registered.
            "conformity" => {
                pop.add_fact(f_ships, oid, format!("ghost_product_{i}"));
            }
            // The order goes out both express and by pickup.
            "role_exclusion" => {
                let k = format!("k{}", o % n_couriers);
                pop.add_fact(f_express, oid.clone(), k.clone());
                pop.add_fact(f_pickup, oid, k);
            }
            other => unreachable!("unknown fault kind {other}"),
        }
    }

    BulkWorkload { schema, population: pop, faults_injected: faults }
}

/// Convenience: a random population for a random schema drawn from the
/// same seed (the shape the differential property tests iterate).
pub fn random_pair(config: &GenConfig, rows: usize) -> (Schema, Population) {
    let schema = crate::generate(config);
    let pop = populate_random(&schema, &PopConfig::sized(config.seed, rows));
    (schema, pop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_population::{check, CheckOptions, Violation};

    #[test]
    fn populate_is_deterministic() {
        let schema = crate::generate(&GenConfig::small(11));
        let a = populate_random(&schema, &PopConfig::sized(11, 40));
        let b2 = populate_random(&schema, &PopConfig::sized(11, 40));
        assert_eq!(a, b2);
        assert!(a.size() > 0);
    }

    #[test]
    fn clean_bulk_workload_has_no_violations() {
        let w = bulk_workload(2_000, 0, 7);
        assert_eq!(w.faults_injected, 0);
        let violations = check(&w.schema, &w.population, CheckOptions::default());
        assert_eq!(violations, vec![], "clean workload must validate cleanly");
    }

    #[test]
    fn injected_faults_surface_as_violations() {
        let w = bulk_workload(2_000, 12, 7);
        assert_eq!(w.faults_injected, 12);
        let violations = check(&w.schema, &w.population, CheckOptions::default());
        // Two full cycles through the six kinds: every kind shows up.
        assert!(violations.iter().any(|v| matches!(v, Violation::Mandatory { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::Uniqueness { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::SubtypeNotSubset { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::ValueConstraint { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::Conformity { .. })));
        assert!(violations.iter().any(|v| matches!(v, Violation::SetComparison { .. })));
        assert!(violations.len() >= 12, "each fault yields at least one violation");
    }
}
