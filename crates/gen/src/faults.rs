//! Fault injectors: plant a minimal instance of each pattern's
//! contradiction into an existing schema.
//!
//! Each injector appends *fresh* elements (types, facts, constraints) whose
//! names are suffixed with a unique counter, so injection never interferes
//! with the host schema's satisfiable parts — the injected contradiction is
//! the only new unsatisfiability. This mirrors the paper's CCFORM setting
//! (§4): a large, mostly-sane ontology with isolated modeling mistakes.

use orm_model::{RingKind, Schema, SchemaBuilder, ValueConstraint};

/// Which pattern a fault triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Pattern 1: subtype without top common supertype.
    P1,
    /// Pattern 2: common subtype of exclusive types.
    P2,
    /// Pattern 3: exclusion over a mandatory role.
    P3,
    /// Pattern 4: frequency minimum above value cardinality.
    P4,
    /// Pattern 5: value + exclusion + frequency conflict.
    P5,
    /// Pattern 6: exclusion contradicting a subset path.
    P6,
    /// Pattern 7: uniqueness with frequency minimum above one.
    P7,
    /// Pattern 8: incompatible ring combination.
    P8,
    /// Pattern 9: subtype loop.
    P9,
    /// Extension 5 (beyond DL): acyclic ring with a mandatory role on a
    /// reflexive fact — every instance needs a successor, so some cycle
    /// must close.
    E5Trap,
    /// Beyond DL: incompatible ring kinds split across *two* ring
    /// constraints on the same fact (merged at check time).
    RingSplit,
    /// Beyond DL: spanning frequency whose window can never be met under
    /// set semantics (each tuple occurs exactly once).
    SpanFreq,
}

impl FaultKind {
    /// All nine faults in paper order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::P1,
        FaultKind::P2,
        FaultKind::P3,
        FaultKind::P4,
        FaultKind::P5,
        FaultKind::P6,
        FaultKind::P7,
        FaultKind::P8,
        FaultKind::P9,
    ];

    /// Faults whose contradiction the DL translation cannot express: the
    /// tableau reports the offending constructs as unmapped, so only the
    /// saturation engine decides these. (`P8` rings and `P9` proper-subtype
    /// cycles are in both lists.)
    pub const BEYOND_DL: [FaultKind; 5] = [
        FaultKind::P8,
        FaultKind::P9,
        FaultKind::E5Trap,
        FaultKind::RingSplit,
        FaultKind::SpanFreq,
    ];
}

/// Rebuild `schema` with the given faults appended. `tag` keeps names
/// unique when the same fault kind is injected repeatedly.
pub fn inject(schema: &Schema, fault: FaultKind, tag: usize) -> Schema {
    // Round-trip through the builder by copying the schema and appending;
    // Schema is Clone, and the injectors only need the mutation API plus
    // fresh elements, so we reconstruct via a builder seeded with a clone.
    let mut schema = schema.clone();
    let t = |name: &str| format!("__{name}_{tag}");

    // Local helper: build fresh elements through a scratch builder so the
    // checked constructors validate them, then splice with the mutation
    // API. Since fresh elements reference only fresh elements, appending
    // through a builder over the clone is simplest: reconstruct is not
    // needed — SchemaBuilder is only usable for new schemas, so we use a
    // micro-builder for the fresh parts and merge by re-adding.
    //
    // In practice the mutation API covers constraints and subtypes, and
    // types/facts must go through a builder. To keep this simple and
    // correct we rebuild: copy the textual dump? No — instead we build the
    // fault fragment in a throwaway schema and then replay it onto the
    // clone using the public API below.
    match fault {
        FaultKind::P1 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p1_a"));
            let b = frag.entity(&t("p1_b"));
            let c = frag.entity(&t("p1_c"));
            frag.subtype(c, a);
            frag.subtype(c, b);
        }
        FaultKind::P2 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let p = frag.entity(&t("p2_p"));
            let x = frag.entity(&t("p2_x"));
            let y = frag.entity(&t("p2_y"));
            let d = frag.entity(&t("p2_d"));
            frag.subtype(x, p);
            frag.subtype(y, p);
            frag.subtype(d, x);
            frag.subtype(d, y);
            frag.exclusive(&[x, y]);
        }
        FaultKind::P3 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p3_a"));
            let x = frag.entity(&t("p3_x"));
            let f1 = frag.fact(&t("p3_f1"), a, x);
            let f2 = frag.fact(&t("p3_f2"), a, x);
            let r1 = frag.schema.fact_type(f1).first();
            let r3 = frag.schema.fact_type(f2).first();
            frag.mandatory(r1);
            frag.exclusion(&[r1, r3]);
        }
        FaultKind::P4 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p4_a"));
            let v = frag.value(&t("p4_v"), &["x1", "x2"]);
            let f = frag.fact(&t("p4_f"), a, v);
            let r1 = frag.schema.fact_type(f).first();
            frag.frequency(r1, 3, Some(5));
        }
        FaultKind::P5 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let v = frag.value(&t("p5_v"), &["x1", "x2"]);
            let x = frag.entity(&t("p5_x"));
            let f1 = frag.fact(&t("p5_f1"), v, x);
            let f2 = frag.fact(&t("p5_f2"), v, x);
            let f3 = frag.fact(&t("p5_f3"), v, x);
            let r1 = frag.schema.fact_type(f1).first();
            let r3 = frag.schema.fact_type(f2).first();
            let r5 = frag.schema.fact_type(f3).first();
            frag.exclusion(&[r1, r3, r5]);
        }
        FaultKind::P6 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p6_a"));
            let x = frag.entity(&t("p6_x"));
            let f1 = frag.fact(&t("p6_f1"), a, x);
            let f2 = frag.fact(&t("p6_f2"), a, x);
            let r1 = frag.schema.fact_type(f1).first();
            let r3 = frag.schema.fact_type(f2).first();
            frag.subset(r1, r3);
            frag.exclusion(&[r1, r3]);
        }
        FaultKind::P7 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p7_a"));
            let x = frag.entity(&t("p7_x"));
            let f = frag.fact(&t("p7_f"), a, x);
            let r1 = frag.schema.fact_type(f).first();
            frag.unique(r1);
            frag.frequency(r1, 2, Some(5));
        }
        FaultKind::P8 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let w = frag.entity(&t("p8_w"));
            let f = frag.fact(&t("p8_f"), w, w);
            frag.ring(f, &[RingKind::Acyclic, RingKind::Symmetric]);
        }
        FaultKind::P9 => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("p9_a"));
            let b = frag.entity(&t("p9_b"));
            let c = frag.entity(&t("p9_c"));
            frag.subtype(a, b);
            frag.subtype(b, c);
            frag.subtype(c, a);
        }
        FaultKind::E5Trap => {
            let mut frag = FragmentWriter::new(&mut schema);
            let w = frag.entity(&t("e5_w"));
            let f = frag.fact(&t("e5_f"), w, w);
            let r1 = frag.schema.fact_type(f).first();
            frag.ring(f, &[RingKind::Acyclic]);
            frag.mandatory(r1);
        }
        FaultKind::RingSplit => {
            let mut frag = FragmentWriter::new(&mut schema);
            let w = frag.entity(&t("rs_w"));
            let f = frag.fact(&t("rs_f"), w, w);
            frag.ring(f, &[RingKind::Symmetric]);
            frag.ring(f, &[RingKind::Acyclic]);
        }
        FaultKind::SpanFreq => {
            let mut frag = FragmentWriter::new(&mut schema);
            let a = frag.entity(&t("sf_a"));
            let x = frag.entity(&t("sf_x"));
            let f = frag.fact(&t("sf_f"), a, x);
            let ft = frag.schema.fact_type(f);
            let (r1, r2) = (ft.first(), ft.second());
            frag.frequency_span(&[r1, r2], 2, Some(4));
        }
    }
    schema
}

/// Inject every fault of `kinds` with distinct tags.
pub fn inject_all(schema: &Schema, kinds: &[FaultKind]) -> Schema {
    let mut out = schema.clone();
    for (i, k) in kinds.iter().enumerate() {
        out = inject(&out, *k, i);
    }
    out
}

/// Thin wrapper over the schema mutation API that can also mint fresh types
/// and facts. Types/facts normally come from `SchemaBuilder`; for fault
/// injection we clone the host schema and re-open it through a builder
/// facade.
struct FragmentWriter<'a> {
    schema: &'a mut Schema,
}

impl<'a> FragmentWriter<'a> {
    fn new(schema: &'a mut Schema) -> Self {
        FragmentWriter { schema }
    }

    fn entity(&mut self, name: &str) -> orm_model::ObjectTypeId {
        splice_types(self.schema, |b| b.entity_type(name).expect("fresh fault name"))
    }

    fn value(&mut self, name: &str, values: &[&str]) -> orm_model::ObjectTypeId {
        splice_types(self.schema, |b| {
            b.value_type(name, Some(ValueConstraint::enumeration(values.iter().copied())))
                .expect("fresh fault name")
        })
    }

    fn fact(
        &mut self,
        name: &str,
        p0: orm_model::ObjectTypeId,
        p1: orm_model::ObjectTypeId,
    ) -> orm_model::FactTypeId {
        splice_types(self.schema, |b| b.fact_type(name, p0, p1).expect("fresh fault name"))
    }

    fn subtype(&mut self, sub: orm_model::ObjectTypeId, sup: orm_model::ObjectTypeId) {
        self.schema.add_subtype(sub, sup).expect("fresh subtype link");
    }

    fn mandatory(&mut self, r: orm_model::RoleId) {
        self.schema.add_constraint(orm_model::Constraint::Mandatory(orm_model::Mandatory {
            roles: vec![r],
        }));
    }

    fn unique(&mut self, r: orm_model::RoleId) {
        self.schema.add_constraint(orm_model::Constraint::Uniqueness(orm_model::Uniqueness {
            roles: vec![r],
        }));
    }

    fn frequency(&mut self, r: orm_model::RoleId, min: u32, max: Option<u32>) {
        self.frequency_span(&[r], min, max);
    }

    fn frequency_span(&mut self, roles: &[orm_model::RoleId], min: u32, max: Option<u32>) {
        self.schema.add_constraint(orm_model::Constraint::Frequency(orm_model::Frequency {
            roles: roles.to_vec(),
            min,
            max,
        }));
    }

    fn exclusion(&mut self, roles: &[orm_model::RoleId]) {
        self.schema.add_constraint(orm_model::Constraint::SetComparison(
            orm_model::SetComparison {
                kind: orm_model::SetComparisonKind::Exclusion,
                args: roles.iter().map(|r| orm_model::RoleSeq::single(*r)).collect(),
            },
        ));
    }

    fn subset(&mut self, sub: orm_model::RoleId, sup: orm_model::RoleId) {
        self.schema.add_constraint(orm_model::Constraint::SetComparison(
            orm_model::SetComparison {
                kind: orm_model::SetComparisonKind::Subset,
                args: vec![orm_model::RoleSeq::single(sub), orm_model::RoleSeq::single(sup)],
            },
        ));
    }

    fn exclusive(&mut self, types: &[orm_model::ObjectTypeId]) {
        self.schema.add_constraint(orm_model::Constraint::ExclusiveTypes(
            orm_model::ExclusiveTypes { types: types.to_vec() },
        ));
    }

    fn ring(&mut self, fact: orm_model::FactTypeId, kinds: &[RingKind]) {
        self.schema.add_constraint(orm_model::Constraint::Ring(orm_model::Ring {
            fact_type: fact,
            kinds: kinds.iter().copied().collect(),
        }));
    }
}

/// Run a builder step against a scratch builder that wraps a clone of the
/// schema, then replace the schema with the enlarged clone.
fn splice_types<T>(schema: &mut Schema, add: impl FnOnce(&mut SchemaBuilder) -> T) -> T {
    let mut builder = SchemaBuilder::from_schema(schema.clone());
    let out = add(&mut builder);
    *schema = builder.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenConfig;

    #[test]
    fn each_fault_adds_elements() {
        let base = crate::generate_clean(&GenConfig::small(3));
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            let faulty = inject(&base, *kind, i);
            assert!(faulty.size() > base.size(), "{kind:?} did not grow the schema");
        }
    }

    #[test]
    fn beyond_dl_faults_add_elements() {
        let base = crate::generate_clean(&GenConfig::small(4));
        for (i, kind) in FaultKind::BEYOND_DL.iter().enumerate() {
            let faulty = inject(&base, *kind, 100 + i);
            assert!(faulty.size() > base.size(), "{kind:?} did not grow the schema");
        }
    }

    #[test]
    fn inject_all_applies_every_fault() {
        let base = crate::generate_clean(&GenConfig::small(3));
        let faulty = inject_all(&base, &FaultKind::ALL);
        assert!(faulty.object_type_count() >= base.object_type_count() + 9 * 2);
    }

    #[test]
    fn injection_does_not_touch_existing_elements() {
        let base = crate::generate_clean(&GenConfig::small(3));
        let faulty = inject(&base, FaultKind::P7, 0);
        for (id, ot) in base.object_types() {
            assert_eq!(faulty.object_type(id).name(), ot.name());
        }
        for (id, c) in base.constraints() {
            assert_eq!(faulty.constraint(id), Some(c));
        }
    }
}
