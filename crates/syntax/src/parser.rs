//! Recursive-descent parser for the schema language.

use crate::ast::{
    AstConstraint, AstDecl, AstRoleRef, AstSchema, AstSeq, AstValue, AstValueConstraint,
};
use crate::error::ParseError;
use crate::lexer::{Token, TokenKind};
use orm_model::RingKind;

/// Parse a token stream into an AST.
pub fn parse_tokens(tokens: &[Token]) -> Result<AstSchema, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let schema = p.schema()?;
    p.expect_eof()?;
    Ok(schema)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::new(t.line, t.column, message),
            None => {
                let (line, column) =
                    self.tokens.last().map(|t| (t.line, t.column + 1)).unwrap_or((1, 1));
                ParseError::new(line, column, message)
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) => Ok(s),
            Some(other) => {
                self.pos -= 1;
                Err(self.error_here(format!("expected {what}, found {}", other.describe())))
            }
            None => Err(self.error_here(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let ident = self.expect_ident(&format!("`{kw}`"))?;
        if ident == kw {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.error_here(format!("expected `{kw}`, found `{ident}`")))
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next().map(|t| &t.kind) {
            Some(k) if k == kind => Ok(()),
            Some(other) => {
                let msg = format!("expected {}, found {}", kind.describe(), other.describe());
                self.pos -= 1;
                Err(self.error_here(msg))
            }
            None => {
                Err(self.error_here(format!("expected {}, found end of input", kind.describe())))
            }
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek().is_some_and(|t| &t.kind == kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token { kind: TokenKind::Ident(s), .. }) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, ParseError> {
        match self.next().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(i)) => Ok(i),
            Some(other) => {
                self.pos -= 1;
                Err(self.error_here(format!("expected {what}, found {}", other.describe())))
            }
            None => Err(self.error_here(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if let Some(t) = self.peek() {
            return Err(ParseError::new(
                t.line,
                t.column,
                format!("unexpected trailing {}", t.kind.describe()),
            ));
        }
        Ok(())
    }

    fn schema(&mut self) -> Result<AstSchema, ParseError> {
        self.expect_keyword("schema")?;
        let name = self.expect_ident("schema name")?;
        self.expect_kind(&TokenKind::LBrace)?;
        let mut decls = Vec::new();
        while !self.eat_kind(&TokenKind::RBrace) {
            decls.push(self.decl()?);
        }
        Ok(AstSchema { name, decls })
    }

    fn decl(&mut self) -> Result<AstDecl, ParseError> {
        let keyword = self.expect_ident("a declaration keyword")?;
        let decl = match keyword.as_str() {
            "entity" => self.entity_decl()?,
            "value" => self.value_decl()?,
            "fact" => self.fact_decl()?,
            "mandatory" => AstDecl::Constraint(self.mandatory_decl()?),
            "unique" => AstDecl::Constraint(self.unique_decl()?),
            "frequency" => AstDecl::Constraint(self.frequency_decl()?),
            "exclusion" => AstDecl::Constraint(AstConstraint::Exclusion(self.seq_set()?)),
            "subset" => {
                let sub = self.seq()?;
                self.expect_keyword("of")?;
                let sup = self.seq()?;
                AstDecl::Constraint(AstConstraint::Subset(sub, sup))
            }
            "equality" => AstDecl::Constraint(AstConstraint::Equality(self.seq_set()?)),
            "exclusive" => AstDecl::Constraint(AstConstraint::ExclusiveTypes(self.name_set()?)),
            "total" => {
                let supertype = self.expect_ident("supertype name")?;
                let subtypes = self.name_set()?;
                AstDecl::Constraint(AstConstraint::TotalSubtypes { supertype, subtypes })
            }
            "ring" => {
                let fact = self.expect_ident("fact type name")?;
                let kind_names = self.name_set()?;
                let mut kinds = Vec::new();
                for k in kind_names {
                    kinds.push(ring_kind(&k).ok_or_else(|| {
                        self.error_here(format!("unknown ring constraint kind `{k}`"))
                    })?);
                }
                AstDecl::Constraint(AstConstraint::Ring { fact, kinds })
            }
            other => {
                self.pos -= 1;
                return Err(self.error_here(format!("unknown declaration keyword `{other}`")));
            }
        };
        self.expect_kind(&TokenKind::Semicolon)?;
        Ok(decl)
    }

    fn supertypes(&mut self) -> Result<Vec<String>, ParseError> {
        let mut supers = Vec::new();
        if self.eat_keyword("subtype-of") {
            loop {
                supers.push(self.expect_ident("supertype name")?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        Ok(supers)
    }

    fn entity_decl(&mut self) -> Result<AstDecl, ParseError> {
        let name = self.expect_ident("entity type name")?;
        let supertypes = self.supertypes()?;
        Ok(AstDecl::Entity { name, supertypes })
    }

    fn value_decl(&mut self) -> Result<AstDecl, ParseError> {
        let name = self.expect_ident("value type name")?;
        let constraint = if self.peek().is_some_and(|t| t.kind == TokenKind::LBrace) {
            Some(self.value_constraint()?)
        } else {
            None
        };
        let supertypes = self.supertypes()?;
        Ok(AstDecl::ValueType { name, constraint, supertypes })
    }

    fn value_constraint(&mut self) -> Result<AstValueConstraint, ParseError> {
        self.expect_kind(&TokenKind::LBrace)?;
        // Empty enumeration `{ }` is legal (and exactly what extension E1
        // flags).
        if self.eat_kind(&TokenKind::RBrace) {
            return Ok(AstValueConstraint::Enumeration(vec![]));
        }
        // `{ INT .. INT }` is a range; anything else is an enumeration.
        if matches!(self.peek(), Some(Token { kind: TokenKind::Int(_), .. }))
            && matches!(self.tokens.get(self.pos + 1), Some(Token { kind: TokenKind::DotDot, .. }))
        {
            let min = self.expect_int("range start")?;
            self.expect_kind(&TokenKind::DotDot)?;
            let max = self.expect_int("range end")?;
            self.expect_kind(&TokenKind::RBrace)?;
            return Ok(AstValueConstraint::IntRange(min, max));
        }
        let mut values = Vec::new();
        loop {
            match self.next().map(|t| t.kind.clone()) {
                Some(TokenKind::ValueStr(s)) => values.push(AstValue::Str(s)),
                Some(TokenKind::Int(i)) => values.push(AstValue::Int(i)),
                _ => {
                    self.pos -= 1;
                    return Err(self.error_here("expected a value literal"));
                }
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RBrace)?;
        Ok(AstValueConstraint::Enumeration(values))
    }

    fn fact_decl(&mut self) -> Result<AstDecl, ParseError> {
        let name = self.expect_ident("fact type name")?;
        self.expect_kind(&TokenKind::LParen)?;
        let first = self.fact_role()?;
        self.expect_kind(&TokenKind::Comma)?;
        let second = self.fact_role()?;
        self.expect_kind(&TokenKind::RParen)?;
        let reading = match self.eat_keyword("reading") {
            true => match self.next().map(|t| t.kind.clone()) {
                Some(TokenKind::Reading(s)) => Some(s),
                _ => {
                    self.pos -= 1;
                    return Err(self.error_here("expected a \"...\" reading string"));
                }
            },
            false => None,
        };
        Ok(AstDecl::Fact { name, first, second, reading })
    }

    fn fact_role(&mut self) -> Result<(String, Option<String>), ParseError> {
        let player = self.expect_ident("player type name")?;
        let label =
            if self.eat_keyword("as") { Some(self.expect_ident("role label")?) } else { None };
        Ok((player, label))
    }

    fn role_ref(&mut self) -> Result<AstRoleRef, ParseError> {
        let name = self.expect_ident("role reference")?;
        if self.eat_kind(&TokenKind::Dot) {
            let pos = self.expect_int("role position (0 or 1)")?;
            if !(0..=1).contains(&pos) {
                self.pos -= 1;
                return Err(self.error_here("role position must be 0 or 1"));
            }
            Ok(AstRoleRef::Path(name, pos as u8))
        } else {
            Ok(AstRoleRef::Label(name))
        }
    }

    fn seq(&mut self) -> Result<AstSeq, ParseError> {
        if self.eat_kind(&TokenKind::LParen) {
            let a = self.role_ref()?;
            self.expect_kind(&TokenKind::Comma)?;
            let b = self.role_ref()?;
            self.expect_kind(&TokenKind::RParen)?;
            Ok(AstSeq::Pair(a, b))
        } else {
            Ok(AstSeq::Single(self.role_ref()?))
        }
    }

    fn seq_set(&mut self) -> Result<Vec<AstSeq>, ParseError> {
        self.expect_kind(&TokenKind::LBrace)?;
        let mut seqs = Vec::new();
        loop {
            seqs.push(self.seq()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RBrace)?;
        Ok(seqs)
    }

    fn name_set(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_kind(&TokenKind::LBrace)?;
        let mut names = Vec::new();
        loop {
            names.push(self.expect_ident("name")?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RBrace)?;
        Ok(names)
    }

    fn mandatory_decl(&mut self) -> Result<AstConstraint, ParseError> {
        if self.peek().is_some_and(|t| t.kind == TokenKind::LBrace) {
            let seqs = self.seq_set()?;
            let roles = seqs_to_roles(seqs)
                .ok_or_else(|| self.error_here("mandatory arguments must be single roles"))?;
            Ok(AstConstraint::Mandatory(roles))
        } else {
            Ok(AstConstraint::Mandatory(vec![self.role_ref()?]))
        }
    }

    fn unique_decl(&mut self) -> Result<AstConstraint, ParseError> {
        match self.seq()? {
            AstSeq::Single(r) => Ok(AstConstraint::Unique(vec![r])),
            AstSeq::Pair(a, b) => Ok(AstConstraint::Unique(vec![a, b])),
        }
    }

    fn frequency_decl(&mut self) -> Result<AstConstraint, ParseError> {
        let roles = match self.seq()? {
            AstSeq::Single(r) => vec![r],
            AstSeq::Pair(a, b) => vec![a, b],
        };
        let min = self.expect_int("frequency lower bound")?;
        if min < 1 {
            self.pos -= 1;
            return Err(self.error_here("frequency lower bound must be ≥ 1"));
        }
        self.expect_kind(&TokenKind::DotDot)?;
        let max = if matches!(self.peek(), Some(Token { kind: TokenKind::Int(_), .. })) {
            Some(self.expect_int("frequency upper bound")? as u32)
        } else {
            None
        };
        Ok(AstConstraint::Frequency { roles, min: min as u32, max })
    }
}

fn seqs_to_roles(seqs: Vec<AstSeq>) -> Option<Vec<AstRoleRef>> {
    seqs.into_iter()
        .map(|s| match s {
            AstSeq::Single(r) => Some(r),
            AstSeq::Pair(..) => None,
        })
        .collect()
}

fn ring_kind(name: &str) -> Option<RingKind> {
    match name {
        "irreflexive" | "ir" => Some(RingKind::Irreflexive),
        "antisymmetric" | "ans" => Some(RingKind::Antisymmetric),
        "asymmetric" | "as" => Some(RingKind::Asymmetric),
        "acyclic" | "ac" => Some(RingKind::Acyclic),
        "intransitive" | "it" => Some(RingKind::Intransitive),
        "symmetric" | "sym" => Some(RingKind::Symmetric),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(input: &str) -> Result<AstSchema, ParseError> {
        parse_tokens(&lex(input).unwrap())
    }

    #[test]
    fn entity_with_supertypes() {
        let ast = parse("schema s { entity C subtype-of A, B; }").unwrap();
        assert_eq!(
            ast.decls,
            vec![AstDecl::Entity { name: "C".into(), supertypes: vec!["A".into(), "B".into()] }]
        );
    }

    #[test]
    fn value_type_with_enumeration_and_range() {
        let ast = parse("schema s { value V { 'a', 1 }; value W { 1..5 }; value X { }; }").unwrap();
        assert_eq!(ast.decls.len(), 3);
        assert!(matches!(
            &ast.decls[0],
            AstDecl::ValueType { constraint: Some(AstValueConstraint::Enumeration(v)), .. }
                if v.len() == 2
        ));
        assert!(matches!(
            &ast.decls[1],
            AstDecl::ValueType { constraint: Some(AstValueConstraint::IntRange(1, 5)), .. }
        ));
        assert!(matches!(
            &ast.decls[2],
            AstDecl::ValueType { constraint: Some(AstValueConstraint::Enumeration(v)), .. }
                if v.is_empty()
        ));
    }

    #[test]
    fn fact_with_labels_and_reading() {
        let ast = parse("schema s { fact f (A as r1, B as r2) reading \"likes\"; }").unwrap();
        assert!(matches!(
            &ast.decls[0],
            AstDecl::Fact { name, first, second, reading }
                if name == "f"
                    && first == &("A".to_owned(), Some("r1".to_owned()))
                    && second == &("B".to_owned(), Some("r2".to_owned()))
                    && reading.as_deref() == Some("likes")
        ));
    }

    #[test]
    fn frequency_open_and_closed() {
        let ast = parse("schema s { frequency r1 2..5; frequency r2 3..; }").unwrap();
        assert!(matches!(
            &ast.decls[0],
            AstDecl::Constraint(AstConstraint::Frequency { min: 2, max: Some(5), .. })
        ));
        assert!(matches!(
            &ast.decls[1],
            AstDecl::Constraint(AstConstraint::Frequency { min: 3, max: None, .. })
        ));
    }

    #[test]
    fn exclusion_with_pairs() {
        let ast = parse("schema s { exclusion { (r1, r2), (r3, r4) }; }").unwrap();
        assert!(matches!(
            &ast.decls[0],
            AstDecl::Constraint(AstConstraint::Exclusion(seqs)) if seqs.len() == 2
        ));
    }

    #[test]
    fn ring_kinds_accept_abbreviations() {
        let ast = parse("schema s { ring f { ir, acyclic }; }").unwrap();
        assert!(matches!(
            &ast.decls[0],
            AstDecl::Constraint(AstConstraint::Ring { kinds, .. })
                if kinds == &vec![RingKind::Irreflexive, RingKind::Acyclic]
        ));
        assert!(parse("schema s { ring f { bogus }; }").is_err());
    }

    #[test]
    fn role_paths_parse() {
        let ast = parse("schema s { mandatory f.1; }").unwrap();
        assert!(matches!(
            &ast.decls[0],
            AstDecl::Constraint(AstConstraint::Mandatory(r))
                if r == &vec![AstRoleRef::Path("f".into(), 1)]
        ));
        assert!(parse("schema s { mandatory f.2; }").is_err());
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let err = parse("schema s { entity A }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"), "got {err}");
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("schema s { } extra").is_err());
    }

    #[test]
    fn zero_frequency_rejected() {
        assert!(parse("schema s { frequency r1 0..5; }").is_err());
    }
}
