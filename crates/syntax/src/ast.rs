//! Abstract syntax of the schema language, prior to name resolution.

use orm_model::RingKind;

/// A parsed schema file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstSchema {
    /// Schema name.
    pub name: String,
    /// Declarations in source order.
    pub decls: Vec<AstDecl>,
}

/// A value-constraint literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstValueConstraint {
    /// `{ 'a', 'b', 3 }`
    Enumeration(Vec<AstValue>),
    /// `{ 1..10 }`
    IntRange(i64, i64),
}

/// A literal value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstValue {
    /// `'x1'`
    Str(String),
    /// `42`
    Int(i64),
}

/// A reference to a role: by label or by `fact.position` path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstRoleRef {
    /// `r1`
    Label(String),
    /// `works_for.0`
    Path(String, u8),
}

/// A role-sequence argument: single role or parenthesised pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstSeq {
    /// `r1`
    Single(AstRoleRef),
    /// `(r1, r2)`
    Pair(AstRoleRef, AstRoleRef),
}

/// Top-level declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstDecl {
    /// `entity Name subtype-of A, B;`
    Entity {
        /// Type name.
        name: String,
        /// Declared supertypes.
        supertypes: Vec<String>,
    },
    /// `value Name { ... } subtype-of A;`
    ValueType {
        /// Type name.
        name: String,
        /// Optional value constraint.
        constraint: Option<AstValueConstraint>,
        /// Declared supertypes.
        supertypes: Vec<String>,
    },
    /// `fact name (Player as label, Player as label) reading "...";`
    Fact {
        /// Predicate name.
        name: String,
        /// First player type and optional role label.
        first: (String, Option<String>),
        /// Second player type and optional role label.
        second: (String, Option<String>),
        /// Optional natural-language reading.
        reading: Option<String>,
    },
    /// A constraint declaration.
    Constraint(AstConstraint),
}

/// Constraint declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstConstraint {
    /// `mandatory r1;` / `mandatory { r1, r3 };`
    Mandatory(Vec<AstRoleRef>),
    /// `unique r1;` / `unique (r1, r2);`
    Unique(Vec<AstRoleRef>),
    /// `frequency r1 2..5;` (`max = None` for `2..`)
    Frequency {
        /// Covered roles.
        roles: Vec<AstRoleRef>,
        /// Lower bound.
        min: u32,
        /// Upper bound.
        max: Option<u32>,
    },
    /// `exclusion { seq, seq, ... };`
    Exclusion(Vec<AstSeq>),
    /// `subset seq of seq;`
    Subset(AstSeq, AstSeq),
    /// `equality { seq, seq, ... };`
    Equality(Vec<AstSeq>),
    /// `exclusive { A, B };`
    ExclusiveTypes(Vec<String>),
    /// `total Super { A, B };`
    TotalSubtypes {
        /// The covered supertype.
        supertype: String,
        /// The covering subtypes.
        subtypes: Vec<String>,
    },
    /// `ring fact { irreflexive, acyclic };`
    Ring {
        /// The constrained fact type.
        fact: String,
        /// Applied kinds.
        kinds: Vec<RingKind>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_types_are_comparable() {
        let a = AstRoleRef::Label("r1".into());
        let b = AstRoleRef::Label("r1".into());
        assert_eq!(a, b);
        assert_ne!(a, AstRoleRef::Path("f".into(), 0));
    }
}
