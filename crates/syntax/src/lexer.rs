//! Tokenizer for the schema language.

use crate::error::ParseError;

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Token kinds of the schema language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`schema`, `entity`, names, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted value literal, e.g. `'x1'`.
    ValueStr(String),
    /// Double-quoted reading text.
    Reading(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `..`
    DotDot,
    /// `.`
    Dot,
}

impl TokenKind {
    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(i) => format!("`{i}`"),
            TokenKind::ValueStr(s) => format!("'{s}'"),
            TokenKind::Reading(s) => format!("\"{s}\""),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::DotDot => "`..`".into(),
            TokenKind::Dot => "`.`".into(),
        }
    }
}

/// Tokenize `input`. `//` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = input.chars().peekable();

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token { kind: $kind, line, column });
            column += $len;
        }};
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                    column += 2; // position bookkeeping only; line resets at \n
                } else {
                    return Err(ParseError::new(line, column, "unexpected `/`"));
                }
            }
            '{' => {
                chars.next();
                push!(TokenKind::LBrace, 1);
            }
            '}' => {
                chars.next();
                push!(TokenKind::RBrace, 1);
            }
            '(' => {
                chars.next();
                push!(TokenKind::LParen, 1);
            }
            ')' => {
                chars.next();
                push!(TokenKind::RParen, 1);
            }
            ',' => {
                chars.next();
                push!(TokenKind::Comma, 1);
            }
            ';' => {
                chars.next();
                push!(TokenKind::Semicolon, 1);
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    push!(TokenKind::DotDot, 2);
                } else {
                    push!(TokenKind::Dot, 1);
                }
            }
            '\'' => {
                chars.next();
                let start_col = column;
                column += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            column += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(ParseError::new(
                                line,
                                start_col,
                                "unterminated value literal",
                            ));
                        }
                        Some(c) => {
                            s.push(c);
                            column += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::ValueStr(s), line, column: start_col });
            }
            '"' => {
                chars.next();
                let start_col = column;
                column += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            column += 1;
                            break;
                        }
                        Some('\n') | None => {
                            return Err(ParseError::new(
                                line,
                                start_col,
                                "unterminated reading string",
                            ));
                        }
                        Some(c) => {
                            s.push(c);
                            column += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Reading(s), line, column: start_col });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start_col = column;
                let mut s = String::new();
                if c == '-' {
                    s.push(c);
                    chars.next();
                    column += 1;
                }
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                let value: i64 = s.parse().map_err(|_| {
                    ParseError::new(line, start_col, format!("invalid integer `{s}`"))
                })?;
                tokens.push(Token { kind: TokenKind::Int(value), line, column: start_col });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start_col = column;
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '-' {
                        // `-` inside identifiers supports `subtype-of`.
                        s.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Ident(s), line, column: start_col });
            }
            other => {
                return Err(ParseError::new(
                    line,
                    column,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("schema s { }"),
            vec![
                TokenKind::Ident("schema".into()),
                TokenKind::Ident("s".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn value_literals_and_ranges() {
        assert_eq!(
            kinds("{ 'x1', 2..5 }"),
            vec![
                TokenKind::LBrace,
                TokenKind::ValueStr("x1".into()),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::DotDot,
                TokenKind::Int(5),
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn negative_integers() {
        assert_eq!(kinds("-3"), vec![TokenKind::Int(-3)]);
    }

    #[test]
    fn dotted_role_paths() {
        assert_eq!(
            kinds("f.0"),
            vec![TokenKind::Ident("f".into()), TokenKind::Dot, TokenKind::Int(0)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment ; { }\nb"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn subtype_of_is_one_identifier() {
        assert_eq!(kinds("subtype-of"), vec![TokenKind::Ident("subtype-of".into())]);
    }

    #[test]
    fn reading_strings() {
        assert_eq!(kinds("\"works for\""), vec![TokenKind::Reading("works for".into())]);
    }

    #[test]
    fn unterminated_literal_errors() {
        assert!(lex("'abc").is_err());
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[1].column, 3);
    }

    #[test]
    fn stray_character_errors() {
        assert!(lex("schema $").is_err());
    }
}
