//! Name resolution: AST → `orm_model::Schema`.

use crate::ast::{
    AstConstraint, AstDecl, AstRoleRef, AstSchema, AstSeq, AstValue, AstValueConstraint,
};
use crate::error::ParseError;
use orm_model::{RoleId, RoleSeq, Schema, SchemaBuilder, Value, ValueConstraint};

/// Lower a parsed AST into a checked schema.
///
/// Two passes: first all object and fact types are declared (so constraints
/// can reference them regardless of order), then subtype links and
/// constraints are attached.
pub fn lower(ast: &AstSchema) -> Result<Schema, ParseError> {
    let mut b = SchemaBuilder::new(ast.name.clone());

    // Pass 1: types and facts.
    for decl in &ast.decls {
        match decl {
            AstDecl::Entity { name, .. } => {
                b.entity_type(name).map_err(semantic)?;
            }
            AstDecl::ValueType { name, constraint, .. } => {
                b.value_type(name, constraint.as_ref().map(lower_value_constraint))
                    .map_err(semantic)?;
            }
            AstDecl::Fact { name, first, second, reading } => {
                let p1 = resolve_type(&b, &first.0)?;
                let p2 = resolve_type(&b, &second.0)?;
                b.fact_type_full(
                    name,
                    (p1, first.1.as_deref()),
                    (p2, second.1.as_deref()),
                    reading.as_deref(),
                )
                .map_err(semantic)?;
            }
            AstDecl::Constraint(_) => {}
        }
    }

    // Pass 2: subtyping and constraints.
    for decl in &ast.decls {
        match decl {
            AstDecl::Entity { name, supertypes } | AstDecl::ValueType { name, supertypes, .. } => {
                let sub = resolve_type(&b, name)?;
                for sup_name in supertypes {
                    let sup = resolve_type(&b, sup_name)?;
                    b.subtype(sub, sup).map_err(semantic)?;
                }
            }
            AstDecl::Fact { .. } => {}
            AstDecl::Constraint(c) => lower_constraint(&mut b, c)?,
        }
    }
    Ok(b.finish())
}

fn lower_constraint(b: &mut SchemaBuilder, c: &AstConstraint) -> Result<(), ParseError> {
    match c {
        AstConstraint::Mandatory(roles) => {
            let roles = resolve_roles(b, roles)?;
            if roles.len() == 1 {
                b.mandatory(roles[0]).map_err(semantic)?;
            } else {
                b.disjunctive_mandatory(roles).map_err(semantic)?;
            }
        }
        AstConstraint::Unique(roles) => {
            let roles = resolve_roles(b, roles)?;
            b.unique(roles).map_err(semantic)?;
        }
        AstConstraint::Frequency { roles, min, max } => {
            let roles = resolve_roles(b, roles)?;
            b.frequency(roles, *min, *max).map_err(semantic)?;
        }
        AstConstraint::Exclusion(seqs) => {
            let seqs = resolve_seqs(b, seqs)?;
            b.exclusion(seqs).map_err(semantic)?;
        }
        AstConstraint::Subset(sub, sup) => {
            let sub = resolve_seq(b, sub)?;
            let sup = resolve_seq(b, sup)?;
            b.subset(sub, sup).map_err(semantic)?;
        }
        AstConstraint::Equality(seqs) => {
            let seqs = resolve_seqs(b, seqs)?;
            b.equality(seqs).map_err(semantic)?;
        }
        AstConstraint::ExclusiveTypes(names) => {
            let types = names.iter().map(|n| resolve_type(b, n)).collect::<Result<Vec<_>, _>>()?;
            b.exclusive_types(types).map_err(semantic)?;
        }
        AstConstraint::TotalSubtypes { supertype, subtypes } => {
            let sup = resolve_type(b, supertype)?;
            let subs =
                subtypes.iter().map(|n| resolve_type(b, n)).collect::<Result<Vec<_>, _>>()?;
            b.total_subtypes(sup, subs).map_err(semantic)?;
        }
        AstConstraint::Ring { fact, kinds } => {
            let fid = b
                .schema()
                .fact_type_by_name(fact)
                .ok_or_else(|| unknown(&format!("fact type `{fact}`")))?;
            b.ring(fid, kinds.iter().copied()).map_err(semantic)?;
        }
    }
    Ok(())
}

fn lower_value_constraint(vc: &AstValueConstraint) -> ValueConstraint {
    match vc {
        AstValueConstraint::Enumeration(values) => {
            ValueConstraint::enumeration(values.iter().map(|v| match v {
                AstValue::Str(s) => Value::str(s.clone()),
                AstValue::Int(i) => Value::int(*i),
            }))
        }
        AstValueConstraint::IntRange(min, max) => {
            ValueConstraint::IntRange { min: *min, max: *max }
        }
    }
}

fn resolve_type(b: &SchemaBuilder, name: &str) -> Result<orm_model::ObjectTypeId, ParseError> {
    b.schema().object_type_by_name(name).ok_or_else(|| unknown(&format!("object type `{name}`")))
}

fn resolve_role(b: &SchemaBuilder, role: &AstRoleRef) -> Result<RoleId, ParseError> {
    match role {
        AstRoleRef::Label(label) => {
            b.schema().role_by_name(label).ok_or_else(|| unknown(&format!("role `{label}`")))
        }
        AstRoleRef::Path(fact, position) => {
            let fid = b
                .schema()
                .fact_type_by_name(fact)
                .ok_or_else(|| unknown(&format!("fact type `{fact}`")))?;
            Ok(b.schema().fact_type(fid).role_at(*position))
        }
    }
}

fn resolve_roles(b: &SchemaBuilder, roles: &[AstRoleRef]) -> Result<Vec<RoleId>, ParseError> {
    roles.iter().map(|r| resolve_role(b, r)).collect()
}

fn resolve_seq(b: &SchemaBuilder, seq: &AstSeq) -> Result<RoleSeq, ParseError> {
    match seq {
        AstSeq::Single(r) => Ok(RoleSeq::single(resolve_role(b, r)?)),
        AstSeq::Pair(x, y) => Ok(RoleSeq::pair(resolve_role(b, x)?, resolve_role(b, y)?)),
    }
}

fn resolve_seqs(b: &SchemaBuilder, seqs: &[AstSeq]) -> Result<Vec<RoleSeq>, ParseError> {
    seqs.iter().map(|s| resolve_seq(b, s)).collect()
}

/// Lowering errors have no precise source position (the AST does not carry
/// spans yet); report them at the schema head.
fn semantic(err: orm_model::ModelError) -> ParseError {
    ParseError::new(1, 1, err.to_string())
}

fn unknown(what: &str) -> ParseError {
    ParseError::new(1, 1, format!("unknown {what}"))
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn constraints_may_precede_declarations() {
        // Two-pass lowering: a constraint may reference a fact declared
        // later in the file.
        let s = parse("schema s { mandatory r1; entity A; fact f (A as r1, A as r2); }").unwrap();
        assert_eq!(s.constraint_count(), 1);
    }

    #[test]
    fn duplicate_entity_reported() {
        let err = parse("schema s { entity A; entity A; }").unwrap_err();
        assert!(err.to_string().contains("already declared"));
    }

    #[test]
    fn builder_errors_surface() {
        // Frequency bounds inverted: the builder rejects it.
        let err = parse("schema s { entity A; fact f (A as r1, A as r2); frequency r1 5..2; }")
            .unwrap_err();
        assert!(err.to_string().contains("frequency"));
    }

    #[test]
    fn value_types_lower_with_constraints() {
        let s = parse("schema s { value V { 'a', 'b' }; }").unwrap();
        let v = s.object_type_by_name("V").unwrap();
        assert_eq!(s.object_type(v).value_cardinality(), Some(2));
    }

    #[test]
    fn int_range_lowering() {
        let s = parse("schema s { value V { 2..4 }; }").unwrap();
        let v = s.object_type_by_name("V").unwrap();
        assert_eq!(s.object_type(v).value_cardinality(), Some(3));
    }
}
