//! Pretty-printer: `orm_model::Schema` → schema language text.
//!
//! `parse(print(s))` reconstructs a structurally identical schema; the
//! round-trip property is tested here and in the workspace integration
//! tests.

use orm_model::{
    Constraint, ObjectTypeKind, RoleSeq, Schema, SetComparisonKind, Value, ValueConstraint,
};
use std::fmt::Write;

/// Render a schema in the textual language.
pub fn print(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {} {{", schema.name());

    for (ty, ot) in schema.object_types() {
        let keyword = match ot.kind() {
            ObjectTypeKind::Entity => "entity",
            ObjectTypeKind::Value => "value",
        };
        let _ = write!(out, "  {keyword} {}", ot.name());
        if let Some(vc) = ot.value_constraint() {
            let _ = write!(out, " {}", print_value_constraint(vc));
        }
        let supers: Vec<&str> = schema
            .subtype_links()
            .filter(|l| l.sub == ty)
            .map(|l| schema.object_type(l.sup).name())
            .collect();
        if !supers.is_empty() {
            let _ = write!(out, " subtype-of {}", supers.join(", "));
        }
        let _ = writeln!(out, ";");
    }

    for (_, ft) in schema.fact_types() {
        let r0 = schema.role(ft.first());
        let r1 = schema.role(ft.second());
        // Auto-generated labels (`fact.position`) are not identifiers;
        // omitting the `as` clause makes the parser regenerate the same
        // label, keeping the round trip exact.
        let label = |role: &orm_model::Role| {
            let auto = format!("{}.{}", ft.name(), role.position());
            if role.name() == auto {
                String::new()
            } else {
                format!(" as {}", role.name())
            }
        };
        let _ = write!(
            out,
            "  fact {} ({}{}, {}{})",
            ft.name(),
            schema.object_type(r0.player()).name(),
            label(r0),
            schema.object_type(r1.player()).name(),
            label(r1),
        );
        if let Some(reading) = ft.reading() {
            let _ = write!(out, " reading \"{reading}\"");
        }
        let _ = writeln!(out, ";");
    }

    for (_, c) in schema.constraints() {
        let _ = writeln!(out, "  {};", print_constraint(schema, c));
    }

    out.push_str("}\n");
    out
}

fn print_value_constraint(vc: &ValueConstraint) -> String {
    match vc {
        ValueConstraint::Enumeration(values) => {
            let items: Vec<String> = values
                .iter()
                .map(|v| match v {
                    Value::Str(s) => format!("'{s}'"),
                    Value::Int(i) => i.to_string(),
                })
                .collect();
            format!("{{ {} }}", items.join(", "))
        }
        ValueConstraint::IntRange { min, max } => format!("{{ {min}..{max} }}"),
    }
}

fn print_seq(schema: &Schema, seq: &RoleSeq) -> String {
    match seq.roles() {
        [r] => schema.role_label(*r).to_owned(),
        [a, b] => format!("({}, {})", schema.role_label(*a), schema.role_label(*b)),
        _ => unreachable!("sequences have length 1 or 2"),
    }
}

fn print_constraint(schema: &Schema, c: &Constraint) -> String {
    match c {
        Constraint::Mandatory(m) => {
            if m.roles.len() == 1 {
                format!("mandatory {}", schema.role_label(m.roles[0]))
            } else {
                let roles: Vec<&str> = m.roles.iter().map(|r| schema.role_label(*r)).collect();
                format!("mandatory {{ {} }}", roles.join(", "))
            }
        }
        Constraint::Uniqueness(u) => {
            if u.roles.len() == 1 {
                format!("unique {}", schema.role_label(u.roles[0]))
            } else {
                format!(
                    "unique ({}, {})",
                    schema.role_label(u.roles[0]),
                    schema.role_label(u.roles[1])
                )
            }
        }
        Constraint::Frequency(f) => {
            let seq = if f.roles.len() == 1 {
                schema.role_label(f.roles[0]).to_owned()
            } else {
                format!("({}, {})", schema.role_label(f.roles[0]), schema.role_label(f.roles[1]))
            };
            match f.max {
                Some(max) => format!("frequency {seq} {}..{max}", f.min),
                None => format!("frequency {seq} {}..", f.min),
            }
        }
        Constraint::SetComparison(sc) => {
            let args: Vec<String> = sc.args.iter().map(|s| print_seq(schema, s)).collect();
            match sc.kind {
                SetComparisonKind::Subset => format!("subset {} of {}", args[0], args[1]),
                SetComparisonKind::Equality => format!("equality {{ {} }}", args.join(", ")),
                SetComparisonKind::Exclusion => format!("exclusion {{ {} }}", args.join(", ")),
            }
        }
        Constraint::ExclusiveTypes(e) => {
            let names: Vec<&str> = e.types.iter().map(|t| schema.object_type(*t).name()).collect();
            format!("exclusive {{ {} }}", names.join(", "))
        }
        Constraint::TotalSubtypes(t) => {
            let names: Vec<&str> =
                t.subtypes.iter().map(|s| schema.object_type(*s).name()).collect();
            format!("total {} {{ {} }}", schema.object_type(t.supertype).name(), names.join(", "))
        }
        Constraint::Ring(r) => {
            let kinds: Vec<&str> = r.kinds.iter().map(|k| k.abbrev()).collect();
            format!("ring {} {{ {} }}", schema.fact_type(r.fact_type).name(), kinds.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, print};

    #[test]
    fn print_emits_all_sections() {
        let s = parse(
            "schema s { entity A; value V { 1..3 }; fact f (A as r1, V as r2); \
             mandatory r1; exclusive { A, V }; }",
        )
        .unwrap();
        let text = print(&s);
        assert!(text.contains("entity A;"));
        assert!(text.contains("value V { 1..3 };"));
        assert!(text.contains("fact f (A as r1, V as r2);"));
        assert!(text.contains("mandatory r1;"));
        assert!(text.contains("exclusive { A, V };"));
    }

    #[test]
    fn every_constraint_kind_round_trips() {
        let text = r#"schema k {
            entity A;
            entity B subtype-of A;
            value V { 'x' };
            fact f (A as r1, V as r2) reading "has";
            fact g (A as r3, V as r4);
            fact h (A as r5, A as r6);
            mandatory r1;
            mandatory { r1, r3 };
            unique r1;
            unique (r1, r2);
            frequency r2 2..5;
            frequency r4 1..;
            exclusion { r1, r3 };
            subset r3 of r1;
            equality { (r1, r2), (r3, r4) };
            exclusive { A, V };
            total A { B };
            ring h { ir, sym };
        }"#;
        let s1 = parse(text).unwrap();
        let printed = print(&s1);
        let s2 = parse(&printed).unwrap();
        assert_eq!(s1.constraint_count(), s2.constraint_count());
        assert_eq!(printed, print(&s2), "printing must be a fixpoint");
    }
}
