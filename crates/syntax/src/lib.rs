//! # orm-syntax — a textual language for ORM schemas
//!
//! ORM's selling point (paper §1) is that schemas translate into pseudo
//! natural language that domain experts can read. This crate provides the
//! textual side of the toolkit:
//!
//! * a compact schema language (`.orm` files) with a [`parse`] function
//!   producing an `orm_model::Schema`;
//! * a [`print()`](fn@print) function rendering any schema back to the language
//!   (`parse ∘ print` is identity up to formatting — property-tested);
//! * a [`verbalize`] function producing the pseudo-natural-language
//!   reading of every fact type and constraint.
//!
//! # The language
//!
//! ```text
//! schema university {
//!   entity Person;
//!   entity Student subtype-of Person;
//!   entity Employee subtype-of Person;
//!   entity PhdStudent subtype-of Student, Employee;
//!   value EmpNr { 'x1', 'x2' };
//!
//!   fact works_for (Employee as r1, Person as r2) reading "works for";
//!
//!   mandatory r1;
//!   unique r1;
//!   frequency r2 2..5;
//!   exclusive { Student, Employee };
//!   ring works_for { irreflexive };
//! }
//! ```
//!
//! Role references are role labels (`r1`) or `fact.position` paths
//! (`works_for.0`). Constraint argument sequences are single roles or
//! parenthesised pairs `(r1, r2)`.
//!
//! ```
//! let schema = orm_syntax::parse(
//!     "schema s { entity A; entity B; fact f (A as r1, B as r2); mandatory r1; }",
//! ).unwrap();
//! assert_eq!(schema.fact_type_count(), 1);
//! let text = orm_syntax::print(&schema);
//! let again = orm_syntax::parse(&text).unwrap();
//! assert_eq!(again.constraint_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod printer;
mod verbalize;

pub use ast::{AstConstraint, AstDecl, AstSchema, AstSeq};
pub use error::ParseError;
pub use printer::print;
pub use verbalize::{
    ring_kind_name, verbalize, verbalize_constraint, verbalize_fact_typing,
    verbalize_implicit_exclusion, verbalize_repair_alternatives, verbalize_ring_declaration,
    verbalize_subtype,
};

use orm_model::Schema;

/// Parse a schema from its textual representation.
pub fn parse(input: &str) -> Result<Schema, ParseError> {
    let tokens = lexer::lex(input)?;
    let ast = parser::parse_tokens(&tokens)?;
    lower::lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_schema_parses() {
        let s = parse("schema s { entity A; }").unwrap();
        assert_eq!(s.name(), "s");
        assert_eq!(s.object_type_count(), 1);
    }

    #[test]
    fn full_feature_schema_parses() {
        let text = r#"
            schema demo {
              entity Person;
              entity Student subtype-of Person;
              entity Employee subtype-of Person;
              value EmpNr { 'x1', 'x2' };
              value Level { 1..4 };

              fact works_for (Employee as r1, Person as r2) reading "works for";
              fact studies (Employee as r3, Person as r4);

              mandatory r1;
              mandatory { r3, r1 };
              unique r1;
              unique (r1, r2);
              frequency r2 2..5;
              frequency r4 3..;
              exclusion { r1, r3 };
              exclusion { (r1, r2), (r3, r4) };
              subset r3 of r1;
              subset (r3, r4) of (r1, r2);
              equality { r1, r3 };
              exclusive { Student, Employee };
              total Person { Student, Employee };
              ring works_for { irreflexive, acyclic };
            }
        "#;
        let s = parse(text).unwrap();
        assert_eq!(s.object_type_count(), 5);
        assert_eq!(s.fact_type_count(), 2);
        assert_eq!(s.constraint_count(), 14);
        assert_eq!(s.subtype_links().count(), 2);
    }

    #[test]
    fn role_path_references_work() {
        let s = parse("schema s { entity A; fact f (A, A); mandatory f.0; unique f.1; }").unwrap();
        assert_eq!(s.constraint_count(), 2);
    }

    #[test]
    fn unknown_names_are_reported() {
        let err = parse("schema s { entity A; fact f (A, Nope); }").unwrap_err();
        assert!(err.to_string().contains("Nope"));
        let err = parse("schema s { entity A; fact f (A, A); mandatory rX; }").unwrap_err();
        assert!(err.to_string().contains("rX"));
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse("schema s { entity ; }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line"), "got: {msg}");
    }

    #[test]
    fn print_round_trips() {
        let text = r#"
            schema rt {
              entity Person;
              entity Student subtype-of Person;
              value Code { 'a', 'b' };
              fact has (Student as r1, Code as r2) reading "has";
              fact knows (Person as r3, Person as r4) reading "knows";
              mandatory r1;
              unique r1;
              frequency r2 2..5;
              ring knows { irreflexive };
            }
        "#;
        let s1 = parse(text).unwrap();
        let printed = print(&s1);
        let s2 = parse(&printed).unwrap();
        assert_eq!(s1.object_type_count(), s2.object_type_count());
        assert_eq!(s1.fact_type_count(), s2.fact_type_count());
        assert_eq!(s1.constraint_count(), s2.constraint_count());
        assert_eq!(s1.subtype_links().count(), s2.subtype_links().count());
        // Printing is a fixpoint after one round.
        assert_eq!(printed, print(&s2));
    }
}
