//! Pseudo-natural-language verbalization of ORM schemas.
//!
//! The paper motivates ORM by its readability for non-computer scientists:
//! "ORM schemes can be translated into pseudo natural language statements"
//! (§1). This module produces those statements — one line per structural
//! element and constraint, in the style popularized by NIAM/ORM tooling.

use orm_model::{Constraint, RingKind, RoleId, RoleSeq, Schema, SetComparisonKind};

/// Verbalize the whole schema, one statement per line.
pub fn verbalize(schema: &Schema) -> String {
    let mut lines: Vec<String> = Vec::new();

    for link in schema.subtype_links() {
        lines.push(format!(
            "Each {} is a {}.",
            schema.object_type(link.sub).name(),
            schema.object_type(link.sup).name()
        ));
    }

    for (ty, ot) in schema.object_types() {
        let _ = ty;
        if let Some(vc) = ot.value_constraint() {
            lines.push(format!("The possible values of {} are {}.", ot.name(), vc));
        }
    }

    for (_, ft) in schema.fact_types() {
        let subject = schema.object_type(schema.player(ft.first())).name();
        let object = schema.object_type(schema.player(ft.second())).name();
        let reading = ft.reading().unwrap_or(ft.name());
        lines.push(format!("{subject} {reading} {object}."));
    }

    for (_, c) in schema.constraints() {
        lines.push(verbalize_constraint(schema, c));
    }

    lines.join("\n")
}

fn role_phrase(schema: &Schema, role: RoleId) -> String {
    let r = schema.role(role);
    let ft = schema.fact_type(r.fact_type());
    let reading = ft.reading().unwrap_or(ft.name());
    let other = schema.object_type(schema.player(schema.co_role(role))).name();
    if r.position() == 0 {
        format!("{reading} some {other}")
    } else {
        format!("have some {other} {reading} them")
    }
}

fn seq_phrase(schema: &Schema, seq: &RoleSeq) -> String {
    match seq.roles() {
        [r] => format!("role {}", schema.role_label(*r)),
        [a, b] => format!("predicate ({}, {})", schema.role_label(*a), schema.role_label(*b)),
        _ => unreachable!(),
    }
}

fn verbalize_constraint(schema: &Schema, c: &Constraint) -> String {
    match c {
        Constraint::Mandatory(m) => {
            let player = schema.object_type(schema.player(m.roles[0])).name();
            if m.roles.len() == 1 {
                format!("Each {player} must {}.", role_phrase(schema, m.roles[0]))
            } else {
                let phrases: Vec<String> =
                    m.roles.iter().map(|r| role_phrase(schema, *r)).collect();
                format!("Each {player} must {}.", phrases.join(" or "))
            }
        }
        Constraint::Uniqueness(u) => {
            if u.roles.len() == 1 {
                let player = schema.object_type(schema.player(u.roles[0])).name();
                format!("Each {player} may {} at most once.", role_phrase(schema, u.roles[0]))
            } else {
                let ft = schema.fact_type(schema.role(u.roles[0]).fact_type());
                format!("Each combination in {} occurs at most once.", ft.name())
            }
        }
        Constraint::Frequency(f) => {
            let bounds = match f.max {
                Some(max) if max == f.min => format!("exactly {} times", f.min),
                Some(max) => format!("between {} and {} times", f.min, max),
                None => format!("at least {} times", f.min),
            };
            if f.roles.len() == 1 {
                let player = schema.object_type(schema.player(f.roles[0])).name();
                format!(
                    "Each {player} that plays role {} does so {bounds}.",
                    schema.role_label(f.roles[0])
                )
            } else {
                let ft = schema.fact_type(schema.role(f.roles[0]).fact_type());
                format!("Each combination in {} occurs {bounds}.", ft.name())
            }
        }
        Constraint::SetComparison(sc) => {
            let args: Vec<String> = sc.args.iter().map(|s| seq_phrase(schema, s)).collect();
            match sc.kind {
                SetComparisonKind::Subset => {
                    format!("Whatever populates {} also populates {}.", args[0], args[1])
                }
                SetComparisonKind::Equality => {
                    format!("The populations of {} are identical.", args.join(" and "))
                }
                SetComparisonKind::Exclusion => {
                    format!("No instance populates more than one of {}.", args.join(", "))
                }
            }
        }
        Constraint::ExclusiveTypes(e) => {
            let names: Vec<&str> = e.types.iter().map(|t| schema.object_type(*t).name()).collect();
            format!("No instance is more than one of {}.", names.join(", "))
        }
        Constraint::TotalSubtypes(t) => {
            let names: Vec<&str> =
                t.subtypes.iter().map(|s| schema.object_type(*s).name()).collect();
            format!(
                "Each {} is at least one of {}.",
                schema.object_type(t.supertype).name(),
                names.join(", ")
            )
        }
        Constraint::Ring(r) => {
            let ft = schema.fact_type(r.fact_type);
            let subject = schema.object_type(schema.player(ft.first())).name();
            let reading = ft.reading().unwrap_or(ft.name());
            let clauses: Vec<String> = r
                .kinds
                .iter()
                .map(|k| match k {
                    RingKind::Irreflexive => format!("no {subject} may {reading} itself"),
                    RingKind::Symmetric => {
                        format!("if one {subject} {reading}s another, the reverse holds too")
                    }
                    RingKind::Antisymmetric => {
                        format!("no two distinct {subject}s may {reading} each other")
                    }
                    RingKind::Asymmetric => {
                        format!("if one {subject} {reading}s another, the reverse never holds")
                    }
                    RingKind::Acyclic => format!("no {reading} cycles are allowed"),
                    RingKind::Intransitive => {
                        format!("{reading} never carries over a middle {subject}")
                    }
                })
                .collect();
            let mut sentence = clauses.join("; ");
            if let Some(first) = sentence.get_mut(0..1) {
                first.make_ascii_uppercase();
            }
            format!("{sentence}.")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn subtypes_and_facts_verbalized() {
        let s = parse(
            "schema s { entity Person; entity Student subtype-of Person; \
             fact works (Person as r1, Person as r2) reading \"works for\"; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("Each Student is a Person."));
        assert!(text.contains("Person works for Person."));
    }

    #[test]
    fn mandatory_and_uniqueness_verbalized() {
        let s = parse(
            "schema s { entity Employee; entity Company; \
             fact works (Employee as r1, Company as r2) reading \"works for\"; \
             mandatory r1; unique r1; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("Each Employee must works for some Company."));
        assert!(text.contains("at most once"));
    }

    #[test]
    fn frequency_bounds_verbalized() {
        let s = parse(
            "schema s { entity A; entity B; fact f (A as r1, B as r2); \
             frequency r1 2..5; frequency r2 3..; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("between 2 and 5 times"));
        assert!(text.contains("at least 3 times"));
    }

    #[test]
    fn ring_constraints_verbalized() {
        let s = parse(
            "schema s { entity Woman; \
             fact sister (Woman as r1, Woman as r2) reading \"is sister of\"; \
             ring sister { ir }; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("No Woman may is sister of itself."));
    }

    #[test]
    fn value_constraints_verbalized() {
        let s = parse("schema s { value Code { 'x1', 'x2' }; }").unwrap();
        assert!(verbalize(&s).contains("The possible values of Code are {'x1', 'x2'}."));
    }

    #[test]
    fn exclusion_verbalized() {
        let s = parse(
            "schema s { entity A; entity B; entity C; \
             exclusive { B, C }; }",
        )
        .unwrap();
        assert!(verbalize(&s).contains("No instance is more than one of B, C."));
    }
}
