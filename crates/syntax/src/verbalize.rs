//! Pseudo-natural-language verbalization of ORM schemas.
//!
//! The paper motivates ORM by its readability for non-computer scientists:
//! "ORM schemes can be translated into pseudo natural language statements"
//! (§1). This module produces those statements — one line per structural
//! element and constraint, in the style popularized by NIAM/ORM tooling.
//!
//! Besides the whole-schema [`verbalize`], the per-element entry points
//! ([`verbalize_constraint`], [`verbalize_subtype`],
//! [`verbalize_implicit_exclusion`], [`verbalize_fact_typing`]) render a
//! *single* statement — the sentences `orm_reasoner::diagnose` assembles
//! when it turns an unsat core's ORM origins into a readable diagnosis.

use orm_model::{
    Constraint, FactTypeId, ObjectTypeId, RingKind, RingKinds, RoleId, RoleSeq, Schema,
    SetComparisonKind,
};

/// Verbalize the whole schema, one statement per line.
pub fn verbalize(schema: &Schema) -> String {
    let mut lines: Vec<String> = Vec::new();

    for link in schema.subtype_links() {
        lines.push(verbalize_subtype(schema, link.sub, link.sup));
    }

    for (ty, ot) in schema.object_types() {
        let _ = ty;
        if let Some(vc) = ot.value_constraint() {
            lines.push(format!("The possible values of {} are {}.", ot.name(), vc));
        }
    }

    for (_, ft) in schema.fact_types() {
        let subject = schema.object_type(schema.player(ft.first())).name();
        let object = schema.object_type(schema.player(ft.second())).name();
        let reading = ft.reading().unwrap_or(ft.name());
        lines.push(format!("{subject} {reading} {object}."));
    }

    for (_, c) in schema.constraints() {
        lines.push(verbalize_constraint(schema, c));
    }

    lines.join("\n")
}

/// One subtype link as a statement: `Each Student is a Person.`
pub fn verbalize_subtype(schema: &Schema, sub: ObjectTypeId, sup: ObjectTypeId) -> String {
    format!("Each {} is a {}.", schema.object_type(sub).name(), schema.object_type(sup).name())
}

/// ORM's implicit exclusion of types without a common supertype, as a
/// statement — the unstated rule diagnosis must surface when it is a
/// culprit, since no constraint in the schema spells it out.
pub fn verbalize_implicit_exclusion(schema: &Schema, a: ObjectTypeId, b: ObjectTypeId) -> String {
    format!(
        "{} and {} share no common supertype, so (implicitly) no instance is both.",
        schema.object_type(a).name(),
        schema.object_type(b).name()
    )
}

/// The typing of one role of a fact type as a statement: which object
/// type populates it.
pub fn verbalize_fact_typing(schema: &Schema, role: RoleId) -> String {
    let r = schema.role(role);
    let ft = schema.fact_type(r.fact_type());
    let player = schema.object_type(schema.player(role)).name();
    let position = if r.position() == 0 { "first" } else { "second" };
    format!(
        "Only {} plays the {} role of {} (role {}).",
        player,
        position,
        ft.name(),
        schema.role_label(role)
    )
}

fn role_phrase(schema: &Schema, role: RoleId) -> String {
    let r = schema.role(role);
    let ft = schema.fact_type(r.fact_type());
    let reading = ft.reading().unwrap_or(ft.name());
    let other = schema.object_type(schema.player(schema.co_role(role))).name();
    if r.position() == 0 {
        format!("{reading} some {other}")
    } else {
        format!("have some {other} {reading} them")
    }
}

fn seq_phrase(schema: &Schema, seq: &RoleSeq) -> String {
    match seq.roles() {
        [r] => format!("role {}", schema.role_label(*r)),
        [a, b] => format!("predicate ({}, {})", schema.role_label(*a), schema.role_label(*b)),
        _ => unreachable!(),
    }
}

/// One constraint as a statement (the per-constraint half of
/// [`verbalize`], exposed so diagnosis can verbalize exactly the
/// constraints an unsat core names).
pub fn verbalize_constraint(schema: &Schema, c: &Constraint) -> String {
    match c {
        Constraint::Mandatory(m) => {
            let player = schema.object_type(schema.player(m.roles[0])).name();
            if m.roles.len() == 1 {
                format!("Each {player} must {}.", role_phrase(schema, m.roles[0]))
            } else {
                let phrases: Vec<String> =
                    m.roles.iter().map(|r| role_phrase(schema, *r)).collect();
                format!("Each {player} must {}.", phrases.join(" or "))
            }
        }
        Constraint::Uniqueness(u) => {
            if u.roles.len() == 1 {
                let player = schema.object_type(schema.player(u.roles[0])).name();
                format!("Each {player} may {} at most once.", role_phrase(schema, u.roles[0]))
            } else {
                let ft = schema.fact_type(schema.role(u.roles[0]).fact_type());
                format!("Each combination in {} occurs at most once.", ft.name())
            }
        }
        Constraint::Frequency(f) => {
            let bounds = match f.max {
                Some(max) if max == f.min => format!("exactly {} times", f.min),
                Some(max) => format!("between {} and {} times", f.min, max),
                None => format!("at least {} times", f.min),
            };
            if f.roles.len() == 1 {
                let player = schema.object_type(schema.player(f.roles[0])).name();
                format!(
                    "Each {player} that plays role {} does so {bounds}.",
                    schema.role_label(f.roles[0])
                )
            } else {
                let ft = schema.fact_type(schema.role(f.roles[0]).fact_type());
                format!("Each combination in {} occurs {bounds}.", ft.name())
            }
        }
        Constraint::SetComparison(sc) => {
            let args: Vec<String> = sc.args.iter().map(|s| seq_phrase(schema, s)).collect();
            match sc.kind {
                SetComparisonKind::Subset => {
                    format!("Whatever populates {} also populates {}.", args[0], args[1])
                }
                SetComparisonKind::Equality => {
                    format!("The populations of {} are identical.", args.join(" and "))
                }
                SetComparisonKind::Exclusion => {
                    format!("No instance populates more than one of {}.", args.join(", "))
                }
            }
        }
        Constraint::ExclusiveTypes(e) => {
            let names: Vec<&str> = e.types.iter().map(|t| schema.object_type(*t).name()).collect();
            format!("No instance is more than one of {}.", names.join(", "))
        }
        Constraint::TotalSubtypes(t) => {
            let names: Vec<&str> =
                t.subtypes.iter().map(|s| schema.object_type(*s).name()).collect();
            format!(
                "Each {} is at least one of {}.",
                schema.object_type(t.supertype).name(),
                names.join(", ")
            )
        }
        Constraint::Ring(r) => {
            let ft = schema.fact_type(r.fact_type);
            let subject = schema.object_type(schema.player(ft.first())).name();
            let reading = ft.reading().unwrap_or(ft.name());
            let clauses: Vec<String> = r
                .kinds
                .iter()
                .map(|k| match k {
                    RingKind::Irreflexive => format!("no {subject} may {reading} itself"),
                    RingKind::Symmetric => {
                        format!("if one {subject} {reading}s another, the reverse holds too")
                    }
                    RingKind::Antisymmetric => {
                        format!("no two distinct {subject}s may {reading} each other")
                    }
                    RingKind::Asymmetric => {
                        format!("if one {subject} {reading}s another, the reverse never holds")
                    }
                    RingKind::Acyclic => format!("no {reading} cycles are allowed"),
                    RingKind::Intransitive => {
                        format!("{reading} never carries over a middle {subject}")
                    }
                })
                .collect();
            let mut sentence = clauses.join("; ");
            if let Some(first) = sentence.get_mut(0..1) {
                first.make_ascii_uppercase();
            }
            format!("{sentence}.")
        }
    }
}

/// The full (unabbreviated) English name of a ring-constraint kind, as
/// used in declaration statements.
pub fn ring_kind_name(kind: RingKind) -> &'static str {
    match kind {
        RingKind::Irreflexive => "irreflexive",
        RingKind::Antisymmetric => "antisymmetric",
        RingKind::Asymmetric => "asymmetric",
        RingKind::Acyclic => "acyclic",
        RingKind::Intransitive => "intransitive",
        RingKind::Symmetric => "symmetric",
    }
}

/// A ring *declaration* as one statement naming the constrained predicate
/// and the declared kinds in full: `*reports to* is declared acyclic and
/// symmetric.` This is the attribution sentence the saturation-side
/// diagnosis uses for verdicts outside the DL fragment, where no unsat
/// core exists to verbalize per-axiom.
///
/// ```
/// use orm_model::{RingKind, SchemaBuilder};
///
/// let mut b = SchemaBuilder::new("s");
/// let e = b.entity_type("Employee").unwrap();
/// let f = b
///     .fact_type_full("reports_to", (e, Some("r1")), (e, Some("r2")), Some("reports to"))
///     .unwrap();
/// b.ring(f, [RingKind::Acyclic, RingKind::Symmetric]).unwrap();
/// let s = b.finish();
/// let kinds = s.index().ring_kinds_by_fact(&s)[0].1;
/// assert_eq!(
///     orm_syntax::verbalize_ring_declaration(&s, f, kinds),
///     "*reports to* is declared acyclic and symmetric."
/// );
/// ```
pub fn verbalize_ring_declaration(schema: &Schema, fact: FactTypeId, kinds: RingKinds) -> String {
    let ft = schema.fact_type(fact);
    let reading = ft.reading().unwrap_or(ft.name());
    let names: Vec<&str> = kinds.iter().map(ring_kind_name).collect();
    format!("*{reading}* is declared {}.", names.join(" and "))
}

/// Render ranked repair alternatives as one "drop one of: …" sentence —
/// the fix-suggestion half of a multi-core diagnosis
/// (`orm_reasoner::diagnose`). Each alternative is the statement list of
/// one repair: the constraints a modeler would drop *together* to make
/// the element satisfiable again. Alternatives are numbered in rank
/// order (most recently edited culprit first, as the diagnosis ranks
/// them).
///
/// ```
/// let text = orm_syntax::verbalize_repair_alternatives(&[
///     vec!["Each PhdStudent is a Employee.".to_owned()],
///     vec!["Each PhdStudent is a Student.".to_owned()],
/// ]);
/// assert_eq!(
///     text,
///     "To repair, drop one of: (1) Each PhdStudent is a Employee. (2) Each PhdStudent is a Student."
/// );
/// assert!(orm_syntax::verbalize_repair_alternatives(&[]).contains("No verified repair"));
/// ```
pub fn verbalize_repair_alternatives(alternatives: &[Vec<String>]) -> String {
    if alternatives.is_empty() {
        return "No verified repair is known.".to_owned();
    }
    let rendered: Vec<String> = alternatives
        .iter()
        .enumerate()
        .map(|(i, stmts)| format!("({}) {}", i + 1, stmts.join(" together with ")))
        .collect();
    format!("To repair, drop one of: {}", rendered.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn subtypes_and_facts_verbalized() {
        let s = parse(
            "schema s { entity Person; entity Student subtype-of Person; \
             fact works (Person as r1, Person as r2) reading \"works for\"; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("Each Student is a Person."));
        assert!(text.contains("Person works for Person."));
    }

    #[test]
    fn mandatory_and_uniqueness_verbalized() {
        let s = parse(
            "schema s { entity Employee; entity Company; \
             fact works (Employee as r1, Company as r2) reading \"works for\"; \
             mandatory r1; unique r1; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("Each Employee must works for some Company."));
        assert!(text.contains("at most once"));
    }

    #[test]
    fn frequency_bounds_verbalized() {
        let s = parse(
            "schema s { entity A; entity B; fact f (A as r1, B as r2); \
             frequency r1 2..5; frequency r2 3..; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("between 2 and 5 times"));
        assert!(text.contains("at least 3 times"));
    }

    #[test]
    fn ring_constraints_verbalized() {
        let s = parse(
            "schema s { entity Woman; \
             fact sister (Woman as r1, Woman as r2) reading \"is sister of\"; \
             ring sister { ir }; }",
        )
        .unwrap();
        let text = verbalize(&s);
        assert!(text.contains("No Woman may is sister of itself."));
    }

    #[test]
    fn value_constraints_verbalized() {
        let s = parse("schema s { value Code { 'x1', 'x2' }; }").unwrap();
        assert!(verbalize(&s).contains("The possible values of Code are {'x1', 'x2'}."));
    }

    #[test]
    fn per_element_statements() {
        let s = parse(
            "schema s { entity Person; entity Student subtype-of Person; entity Car; \
             fact drives (Person as r1, Car as r2); }",
        )
        .unwrap();
        let person = s.object_type_by_name("Person").unwrap();
        let student = s.object_type_by_name("Student").unwrap();
        let car = s.object_type_by_name("Car").unwrap();
        assert_eq!(verbalize_subtype(&s, student, person), "Each Student is a Person.");
        assert_eq!(
            verbalize_implicit_exclusion(&s, person, car),
            "Person and Car share no common supertype, so (implicitly) no instance is both."
        );
        let drives = s.fact_type_by_name("drives").unwrap();
        let r1 = s.fact_type(drives).first();
        let r2 = s.fact_type(drives).second();
        assert!(verbalize_fact_typing(&s, r1).contains("Only Person plays the first role"));
        assert!(verbalize_fact_typing(&s, r2).contains("Only Car plays the second role"));
    }

    #[test]
    fn exclusion_verbalized() {
        let s = parse(
            "schema s { entity A; entity B; entity C; \
             exclusive { B, C }; }",
        )
        .unwrap();
        assert!(verbalize(&s).contains("No instance is more than one of B, C."));
    }
}
