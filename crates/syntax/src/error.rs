//! Parse and lowering errors with source positions.

use std::fmt;

/// An error produced while lexing, parsing or lowering a schema text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        ParseError { line, column, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "unexpected `;`");
        assert_eq!(e.to_string(), "line 3, column 7: unexpected `;`");
    }
}
