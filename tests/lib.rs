//! Shared helpers for the workspace integration tests.

use orm_gen::GenConfig;

/// A generation config small enough for the bounded model finder to fully
/// explore in a property test iteration.
pub fn tiny_config(seed: u64) -> GenConfig {
    GenConfig {
        n_types: 3,
        n_facts: 2,
        subtype_density: 0.4,
        mandatory_density: 0.4,
        uniqueness_density: 0.5,
        frequency_density: 0.3,
        value_density: 0.3,
        exclusion_density: 0.4,
        subset_density: 0.4,
        ring_density: 0.4,
        ..GenConfig::small(seed)
    }
}

/// A mappable-fragment config: no value constraints, no rings — everything
/// the ORM→DL translation expresses exactly.
pub fn mappable_config(seed: u64) -> GenConfig {
    GenConfig { value_density: 0.0, ring_density: 0.0, ..tiny_config(seed) }
}
