//! Agreement between the two complete reasoners on the DL-mappable
//! fragment (no rings, no value constraints, no subtype cycles): the
//! tableau and the bounded model finder must never contradict each other,
//! and both must agree with the patterns' unsatisfiability claims.

use orm_dl::{translate, DlOutcome};
use orm_gen::generate;
use orm_reasoner::{role_satisfiability, type_satisfiability, Bounds};
use orm_tests::mappable_config;
use proptest::prelude::*;

const DL_BUDGET: u64 = 120_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// If the bounded finder produces a model populating a role, the DL
    /// must not call that role unsatisfiable — and vice versa: a DL
    /// refutation means the finder cannot find a model.
    #[test]
    fn finder_and_tableau_never_contradict(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let idx = schema.index();
        if schema.object_types().any(|(t, _)| idx.on_subtype_cycle(t)) {
            // Subtype loops are outside the mappable fragment (strictness).
            return Ok(());
        }
        let translation = translate(&schema);
        prop_assert!(translation.unmapped.is_empty(), "{:?}", translation.unmapped);

        for (role, _) in schema.roles() {
            let dl = translation.role_satisfiable(role, DL_BUDGET);
            let finder = role_satisfiability(&schema, role, Bounds::small());
            match (dl, finder) {
                (DlOutcome::Unsat, outcome) => prop_assert!(
                    !outcome.is_sat(),
                    "DL refuted role {} but the finder found a model",
                    schema.role_label(role)
                ),
                (DlOutcome::Sat, outcome) => {
                    // The finder may fail to find a model within bounds even
                    // for satisfiable roles (no finite-model guarantee), so
                    // only a *definitive* mismatch in the other direction is
                    // checkable here: nothing to assert.
                    let _ = outcome;
                }
                (DlOutcome::ResourceLimit, _) => {}
            }
        }
        for (ty, _) in schema.object_types() {
            let dl = translation.type_satisfiable(ty, DL_BUDGET);
            if dl == DlOutcome::Unsat {
                let finder = type_satisfiability(&schema, ty, Bounds::small());
                prop_assert!(
                    !finder.is_sat(),
                    "DL refuted type {} but the finder found a model",
                    schema.object_type(ty).name()
                );
            }
        }
    }

    /// Pattern findings restricted to the mappable fragment are confirmed
    /// by the DL tableau (not only by the bounded finder): two independent
    /// complete procedures agreeing with each pattern.
    #[test]
    fn patterns_confirmed_by_dl(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let idx = schema.index();
        if schema.object_types().any(|(t, _)| idx.on_subtype_cycle(t)) {
            return Ok(());
        }
        let translation = translate(&schema);
        prop_assert!(translation.unmapped.is_empty());
        let report = orm_core::validate(&schema);
        for finding in &report.findings {
            for &role in &finding.unsat_roles {
                let dl = translation.role_satisfiable(role, DL_BUDGET);
                prop_assert!(
                    dl != DlOutcome::Sat,
                    "pattern {:?} flagged role {} but the DL says satisfiable",
                    finding.code,
                    schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                let dl = translation.type_satisfiable(ty, DL_BUDGET);
                prop_assert!(
                    dl != DlOutcome::Sat,
                    "pattern {:?} flagged type {} but the DL says satisfiable",
                    finding.code,
                    schema.object_type(ty).name()
                );
            }
        }
    }
}

/// The figures of the mappable fragment, checked against the DL one by one.
#[test]
fn mappable_figures_agree_with_dl() {
    use orm_core::fixtures;
    for fixture in fixtures::all() {
        let translation = translate(&fixture.schema);
        if !translation.unmapped.is_empty() {
            continue; // FIG5/6/7 (values), FIG11/12 (rings), FIG13 (loop)
        }
        let report = orm_core::validate(&fixture.schema);
        for finding in &report.findings {
            for &role in &finding.unsat_roles {
                assert_eq!(
                    translation.role_satisfiable(role, DL_BUDGET),
                    DlOutcome::Unsat,
                    "{}: DL disagrees on role {}",
                    fixture.id,
                    fixture.schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                assert_eq!(
                    translation.type_satisfiable(ty, DL_BUDGET),
                    DlOutcome::Unsat,
                    "{}: DL disagrees on type {}",
                    fixture.id,
                    fixture.schema.object_type(ty).name()
                );
            }
        }
    }
}
