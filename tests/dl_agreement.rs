//! Agreement between the complete reasoners on the DL-mappable fragment
//! (no rings, no value constraints, no subtype cycles): the tableau and
//! the bounded model finder must never contradict each other, and both
//! must agree with the patterns' unsatisfiability claims.
//!
//! This file is also the **differential suite** for the trail-based
//! tableau rewrite (now with dependency-directed backjumping): on
//! generated schemas the optimized engine must return verdicts identical
//! to the retained classic clone-based engine (`orm_dl::classic`), and
//! its refutations must be confirmed by the bounded model search and the
//! nine pattern checkers on fault-injected schemas. The `Translation`
//! helpers additionally route through the sharded verdict cache
//! ([`orm_dl::SatShards`]), so the cached query path is differentially
//! pinned against the uncached one (including repeat passes that answer
//! from memory) — and the **parallel batteries** (`classify_par`,
//! `role_sweep_par`) are pinned verdict for verdict against their
//! sequential drivers across several thread counts, with shard-aggregated
//! cache stats required to equal the sequential totals.

use orm_dl::{translate, DlOutcome};
use orm_gen::generate;
use orm_reasoner::{role_satisfiability, type_satisfiability, Bounds};
use orm_tests::{mappable_config, tiny_config};
use proptest::prelude::*;

const DL_BUDGET: u64 = 120_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// If the bounded finder produces a model populating a role, the DL
    /// must not call that role unsatisfiable — and vice versa: a DL
    /// refutation means the finder cannot find a model.
    #[test]
    fn finder_and_tableau_never_contradict(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let idx = schema.index();
        if schema.object_types().any(|(t, _)| idx.on_subtype_cycle(t)) {
            // Subtype loops are outside the mappable fragment (strictness).
            return Ok(());
        }
        let translation = translate(&schema);
        prop_assert!(translation.unmapped.is_empty(), "{:?}", translation.unmapped);

        for (role, _) in schema.roles() {
            let dl = translation.role_satisfiable(role, DL_BUDGET);
            let finder = role_satisfiability(&schema, role, Bounds::small());
            match (dl, finder) {
                (DlOutcome::Unsat, outcome) => prop_assert!(
                    !outcome.is_sat(),
                    "DL refuted role {} but the finder found a model",
                    schema.role_label(role)
                ),
                (DlOutcome::Sat, outcome) => {
                    // The finder may fail to find a model within bounds even
                    // for satisfiable roles (no finite-model guarantee), so
                    // only a *definitive* mismatch in the other direction is
                    // checkable here: nothing to assert.
                    let _ = outcome;
                }
                (DlOutcome::ResourceLimit, _) => {}
            }
        }
        for (ty, _) in schema.object_types() {
            let dl = translation.type_satisfiable(ty, DL_BUDGET);
            if dl == DlOutcome::Unsat {
                let finder = type_satisfiability(&schema, ty, Bounds::small());
                prop_assert!(
                    !finder.is_sat(),
                    "DL refuted type {} but the finder found a model",
                    schema.object_type(ty).name()
                );
            }
        }
    }

    /// Pattern findings restricted to the mappable fragment are confirmed
    /// by the DL tableau (not only by the bounded finder): two independent
    /// complete procedures agreeing with each pattern.
    #[test]
    fn patterns_confirmed_by_dl(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let idx = schema.index();
        if schema.object_types().any(|(t, _)| idx.on_subtype_cycle(t)) {
            return Ok(());
        }
        let translation = translate(&schema);
        prop_assert!(translation.unmapped.is_empty());
        let report = orm_core::validate(&schema);
        for finding in &report.findings {
            for &role in &finding.unsat_roles {
                let dl = translation.role_satisfiable(role, DL_BUDGET);
                prop_assert!(
                    dl != DlOutcome::Sat,
                    "pattern {:?} flagged role {} but the DL says satisfiable",
                    finding.code,
                    schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                let dl = translation.type_satisfiable(ty, DL_BUDGET);
                prop_assert!(
                    dl != DlOutcome::Sat,
                    "pattern {:?} flagged type {} but the DL says satisfiable",
                    finding.code,
                    schema.object_type(ty).name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential: the trail-based engine and the retained classic
    /// clone-based engine return the same verdict for every role and
    /// object type of generated schemas (including unmappable constructs —
    /// both engines see the same TBox). Budget accounting differs between
    /// the engines, so a `ResourceLimit` on either side is inconclusive
    /// and skipped; definitive verdicts must be identical.
    #[test]
    fn trail_and_classic_engines_agree(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let translation = translate(&schema);
        for (role, _) in schema.roles() {
            let query = translation.role_concept(role);
            let new = orm_dl::satisfiable(&translation.tbox, &query, DL_BUDGET);
            let old = orm_dl::classic::satisfiable(&translation.tbox, &query, DL_BUDGET);
            if new != DlOutcome::ResourceLimit && old != DlOutcome::ResourceLimit {
                prop_assert_eq!(
                    new,
                    old,
                    "engines disagree on role {} (seed {})",
                    schema.role_label(role),
                    seed
                );
            }
        }
        for (ty, _) in schema.object_types() {
            let query = translation.type_concept(ty);
            let new = orm_dl::satisfiable(&translation.tbox, &query, DL_BUDGET);
            let old = orm_dl::classic::satisfiable(&translation.tbox, &query, DL_BUDGET);
            if new != DlOutcome::ResourceLimit && old != DlOutcome::ResourceLimit {
                prop_assert_eq!(
                    new,
                    old,
                    "engines disagree on type {} (seed {})",
                    schema.object_type(ty).name(),
                    seed
                );
            }
        }
    }

    /// Differential for the verdict cache: the `Translation` helpers
    /// (which consult the shared `SatCache`) must return exactly what the
    /// uncached `orm_dl::satisfiable` returns — on the first pass (cache
    /// misses that populate entries) and on a second pass answered from
    /// memory.
    #[test]
    fn cached_and_uncached_paths_agree(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let translation = translate(&schema);
        for pass in 0..2 {
            for (role, _) in schema.roles() {
                let cached = translation.role_satisfiable(role, DL_BUDGET);
                let uncached = orm_dl::satisfiable(
                    &translation.tbox,
                    &translation.role_concept(role),
                    DL_BUDGET,
                );
                prop_assert_eq!(
                    cached,
                    uncached,
                    "cache diverged on role {} (seed {seed}, pass {pass})",
                    schema.role_label(role)
                );
            }
            for (ty, _) in schema.object_types() {
                let cached = translation.type_satisfiable(ty, DL_BUDGET);
                let uncached = orm_dl::satisfiable(
                    &translation.tbox,
                    &translation.type_concept(ty),
                    DL_BUDGET,
                );
                prop_assert_eq!(
                    cached,
                    uncached,
                    "cache diverged on type {} (seed {seed}, pass {pass})",
                    schema.object_type(ty).name()
                );
            }
        }
        // The second pass must have been answered from memory.
        let stats = translation.cache_stats();
        prop_assert!(
            stats.hits >= stats.misses,
            "second pass was not served from the cache: {stats:?}"
        );
    }

    /// Classification is deterministic under the cache: a repeat run
    /// returns the identical pair set (served from memory), and each
    /// cached subsumption verdict matches the classic engine's.
    #[test]
    fn classification_stable_under_cache(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        let first = translation.classify(&schema, DL_BUDGET);
        let second = translation.classify(&schema, DL_BUDGET);
        prop_assert_eq!(&first, &second, "classification changed across cached runs (seed {})", seed);
        for &(sub, sup) in &first {
            let classic = orm_dl::classic::subsumes(
                &translation.tbox,
                &translation.type_concept(sup),
                &translation.type_concept(sub),
                DL_BUDGET,
            );
            if classic.is_some() {
                prop_assert_eq!(
                    classic,
                    Some(true),
                    "classic engine rejects cached subsumption pair (seed {})",
                    seed
                );
            }
        }
    }

    /// Differential for the parallel classification battery: on random
    /// schemas, `classify_par` at 1, 2 and 8 threads returns the pair set
    /// `classify` returns — same pairs, same order — from a cold cache
    /// *and* from a warm one (the warm run answers from shards populated
    /// by the parallel pass itself).
    #[test]
    fn classify_par_matches_sequential(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        let sequential = translation.classify(&schema, DL_BUDGET);
        for threads in [1usize, 2, 8] {
            let cold = translation.clone();
            prop_assert_eq!(
                &cold.classify_par(&schema, DL_BUDGET, threads),
                &sequential,
                "cold parallel classification diverged at {} threads (seed {})",
                threads,
                seed
            );
            prop_assert_eq!(
                &cold.classify_par(&schema, DL_BUDGET, threads),
                &sequential,
                "warm parallel classification diverged at {} threads (seed {})",
                threads,
                seed
            );
        }
    }

    /// Differential for the parallel role sweep: verdicts and order match
    /// the sequential sweep at every thread count.
    #[test]
    fn role_sweep_par_matches_sequential(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        let sequential = translation.role_sweep(&schema, DL_BUDGET);
        for threads in [1usize, 2, 8] {
            let cold = translation.clone();
            prop_assert_eq!(
                &cold.role_sweep_par(&schema, DL_BUDGET, threads),
                &sequential,
                "parallel role sweep diverged at {} threads (seed {})",
                threads,
                seed
            );
        }
    }

    /// The sharded cache dedups parallel work exactly once per distinct
    /// root label set: aggregated across shards, a parallel battery's
    /// miss count — and therefore its hit+miss total — equals the
    /// sequential battery's, no matter how the threads interleave.
    #[test]
    fn shard_stats_aggregate_to_sequential_totals(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        translation.classify(&schema, DL_BUDGET);
        translation.role_sweep(&schema, DL_BUDGET);
        let seq = translation.cache_stats();
        for threads in [2usize, 8] {
            let par = translation.clone();
            par.classify_par(&schema, DL_BUDGET, threads);
            par.role_sweep_par(&schema, DL_BUDGET, threads);
            let stats = par.cache_stats();
            prop_assert_eq!(
                stats.misses, seq.misses,
                "a parallel battery re-proved a cached key at {} threads (seed {seed})",
                threads
            );
            prop_assert_eq!(
                stats.hits + stats.misses,
                seq.hits + seq.misses,
                "hit+miss totals diverged at {} threads (seed {seed})",
                threads
            );
        }
    }

    /// Differential over derived subsumption: classification through the
    /// trail-based engine matches the classic engine pair by pair.
    #[test]
    fn subsumption_agrees_between_engines(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        let types: Vec<_> = schema.object_types().map(|(t, _)| t).collect();
        for &sub in &types {
            for &sup in &types {
                let new = orm_dl::subsumes(
                    &translation.tbox,
                    &translation.type_concept(sup),
                    &translation.type_concept(sub),
                    DL_BUDGET,
                );
                let old = orm_dl::classic::subsumes(
                    &translation.tbox,
                    &translation.type_concept(sup),
                    &translation.type_concept(sub),
                    DL_BUDGET,
                );
                if let (Some(n), Some(o)) = (new, old) {
                    prop_assert_eq!(n, o, "subsumption disagreement (seed {})", seed);
                }
            }
        }
    }
}

/// Fault-injected schemas, one per paper pattern: every element the
/// pattern checkers flag must be refuted by the bounded model search, and
/// — when the schema stays inside the mappable fragment — by *both*
/// tableau engines. Zero disagreements is the acceptance bar of the
/// engine rewrite.
#[test]
fn injected_faults_confirmed_by_finder_and_both_engines() {
    use orm_gen::faults::{inject, FaultKind};
    use orm_gen::{generate_clean, GenConfig};

    for (i, fault) in FaultKind::ALL.into_iter().enumerate() {
        let clean = generate_clean(&GenConfig::sized(11 + i as u64, 6));
        let schema = inject(&clean, fault, 0);
        let report = orm_core::validate(&schema);
        assert!(report.has_unsat(), "fault {fault:?} did not trigger any pattern");
        let translation = translate(&schema);
        let mappable = translation.unmapped.is_empty();
        for finding in &report.findings {
            for &role in &finding.unsat_roles {
                let finder = role_satisfiability(&schema, role, Bounds::small());
                assert!(
                    !finder.is_sat(),
                    "{fault:?}: finder found a model for flagged role {}",
                    schema.role_label(role)
                );
                if mappable {
                    let query = translation.role_concept(role);
                    let new = orm_dl::satisfiable(&translation.tbox, &query, DL_BUDGET);
                    let old = orm_dl::classic::satisfiable(&translation.tbox, &query, DL_BUDGET);
                    assert_ne!(
                        new,
                        DlOutcome::Sat,
                        "{fault:?}: trail engine says Sat for flagged role {}",
                        schema.role_label(role)
                    );
                    assert_ne!(
                        old,
                        DlOutcome::Sat,
                        "{fault:?}: classic engine says Sat for flagged role {}",
                        schema.role_label(role)
                    );
                }
            }
            for &ty in &finding.unsat_types {
                let finder = type_satisfiability(&schema, ty, Bounds::small());
                assert!(
                    !finder.is_sat(),
                    "{fault:?}: finder found a model for flagged type {}",
                    schema.object_type(ty).name()
                );
                if mappable {
                    let query = translation.type_concept(ty);
                    let new = orm_dl::satisfiable(&translation.tbox, &query, DL_BUDGET);
                    let old = orm_dl::classic::satisfiable(&translation.tbox, &query, DL_BUDGET);
                    assert_ne!(
                        new,
                        DlOutcome::Sat,
                        "{fault:?}: trail engine says Sat for flagged type {}",
                        schema.object_type(ty).name()
                    );
                    assert_ne!(
                        old,
                        DlOutcome::Sat,
                        "{fault:?}: classic engine says Sat for flagged type {}",
                        schema.object_type(ty).name()
                    );
                }
            }
        }
    }
}

/// The figures of the mappable fragment, checked against the DL one by one.
#[test]
fn mappable_figures_agree_with_dl() {
    use orm_core::fixtures;
    for fixture in fixtures::all() {
        let translation = translate(&fixture.schema);
        if !translation.unmapped.is_empty() {
            continue; // FIG5/6/7 (values), FIG11/12 (rings), FIG13 (loop)
        }
        let report = orm_core::validate(&fixture.schema);
        for finding in &report.findings {
            for &role in &finding.unsat_roles {
                assert_eq!(
                    translation.role_satisfiable(role, DL_BUDGET),
                    DlOutcome::Unsat,
                    "{}: DL disagrees on role {}",
                    fixture.id,
                    fixture.schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                assert_eq!(
                    translation.type_satisfiable(ty, DL_BUDGET),
                    DlOutcome::Unsat,
                    "{}: DL disagrees on type {}",
                    fixture.id,
                    fixture.schema.object_type(ty).name()
                );
            }
        }
    }
}
