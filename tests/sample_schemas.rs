//! The `.orm` sample files shipped under `examples/schemas/` parse, validate
//! with the expected verdicts, and round-trip through the printer.

use orm_core::{validate, CheckCode};
use orm_syntax::{parse, print, verbalize};
use std::path::PathBuf;

fn schemas_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../examples/schemas")
}

fn load(name: &str) -> orm_model::Schema {
    let path = schemas_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"))
}

#[test]
fn fig1_university_file() {
    let schema = load("fig1_university.orm");
    let report = validate(&schema);
    assert_eq!(report.by_code(CheckCode::P2).count(), 1);
    let phd = schema.object_type_by_name("PhdStudent").expect("declared");
    assert!(report.unsat_types().contains(&phd));
}

#[test]
fn library_file_is_clean_and_satisfiable() {
    let schema = load("library.orm");
    let report = validate(&schema);
    assert!(report.is_clean(), "{}", report.render(&schema));
    let outcome = orm_reasoner::strong_satisfiability(&schema, orm_reasoner::Bounds::default());
    assert!(outcome.is_sat(), "library.orm should be strongly satisfiable: {outcome:?}");
}

#[test]
fn faulty_flight_file_triggers_expected_patterns() {
    let schema = load("faulty_flight.orm");
    let report = validate(&schema);
    for code in [CheckCode::P2, CheckCode::P7, CheckCode::P8] {
        assert_eq!(report.by_code(code).count(), 1, "{code:?} should fire once");
    }
    let doomed = schema.object_type_by_name("CargoPassengerFlight").expect("declared");
    assert!(report.unsat_types().contains(&doomed));
}

#[test]
fn all_sample_files_round_trip_and_verbalize() {
    for entry in std::fs::read_dir(schemas_dir()).expect("schemas dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("orm") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        let schema =
            parse(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let printed = print(&schema);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("{} does not round-trip: {e}", path.display()));
        assert_eq!(schema.constraint_count(), reparsed.constraint_count());
        assert!(!verbalize(&schema).is_empty());
    }
}
