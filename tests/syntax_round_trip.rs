//! Property tests for the schema language: `parse ∘ print` is the identity
//! on schema structure, across randomly generated schemas.

use orm_gen::{generate, generate_clean, GenConfig};
use orm_model::Schema;
use orm_syntax::{parse, print, verbalize};
use proptest::prelude::*;

/// Structural fingerprint that must survive a round trip. Debug output of
/// constraints includes ids, which are allocation-order dependent; the
/// generator and the parser both allocate in source order, so comparing
/// formatted dumps is exact.
fn fingerprint(schema: &Schema) -> String {
    let mut out = String::new();
    for (_, ot) in schema.object_types() {
        out.push_str(&format!("{}:{:?}:{:?}\n", ot.name(), ot.kind(), ot.value_constraint()));
    }
    // The printer groups subtype links per type declaration, so link order
    // is not preserved — compare them as a set.
    let mut links: Vec<String> = schema
        .subtype_links()
        .map(|link| {
            format!(
                "{}<:{}\n",
                schema.object_type(link.sub).name(),
                schema.object_type(link.sup).name()
            )
        })
        .collect();
    links.sort();
    out.extend(links);
    for (_, ft) in schema.fact_types() {
        out.push_str(&format!("{}({:?})\n", ft.name(), ft.reading()));
    }
    for (_, c) in schema.constraints() {
        out.push_str(&format!("{c:?}\n"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_preserves_structure(seed in any::<u64>()) {
        let schema = generate(&GenConfig::small(seed));
        let text = print(&schema);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(fingerprint(&schema), fingerprint(&reparsed));
    }

    #[test]
    fn printing_is_a_fixpoint(seed in any::<u64>()) {
        let schema = generate_clean(&GenConfig::small(seed));
        let once = print(&schema);
        let twice = print(&parse(&once).expect("valid print output"));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn verbalization_never_panics(seed in any::<u64>()) {
        let schema = generate(&GenConfig::small(seed));
        let text = verbalize(&schema);
        prop_assert!(!text.is_empty() || schema.size() == 0);
    }

    #[test]
    fn medium_schemas_round_trip(seed in 0u64..32) {
        let schema = generate(&GenConfig::medium(seed));
        let text = print(&schema);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}"));
        prop_assert_eq!(fingerprint(&schema), fingerprint(&reparsed));
    }
}

#[test]
fn parse_rejects_garbage_without_panicking() {
    for garbage in [
        "",
        "schema",
        "schema {",
        "schema s {",
        "schema s { entity }",
        "schema s { fact f (A) ; }",
        "schema s }{",
        "schema s { value V { .. }; }",
        "🦀",
    ] {
        assert!(parse(garbage).is_err(), "should reject: {garbage}");
    }
}
