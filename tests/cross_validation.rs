//! Cross-validation of the pattern checkers against the ground-truth
//! semantics — the central *soundness* evidence of this reproduction:
//!
//! * every role/type any pattern flags is genuinely unpopulatable (the
//!   complete bounded model finder refutes it);
//! * "clean" generated schemas trigger nothing and are genuinely strongly
//!   satisfiable;
//! * each fault injector triggers exactly its pattern;
//! * the ring-constraint Table 1 agrees with satisfiability of actual
//!   one-fact schemas.

use orm_core::{validate, validate_all, CheckCode, Severity};
use orm_gen::faults::{inject, FaultKind};
use orm_gen::{generate, generate_clean, GenConfig};
use orm_model::{RingKinds, SchemaBuilder};
use orm_reasoner::{
    find_model, role_satisfiability, strong_satisfiability, type_satisfiability, Bounds, Outcome,
    Target,
};
use orm_tests::tiny_config;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: pattern-flagged roles and types are refuted by the
    /// complete finder (within bounds that suffice for every pattern's
    /// contradiction).
    #[test]
    fn flagged_elements_are_truly_unsatisfiable(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let report = validate(&schema);
        let bounds = Bounds::small();
        for finding in &report.findings {
            prop_assert_eq!(finding.severity, Severity::Unsatisfiable);
            for &role in &finding.unsat_roles {
                let outcome = role_satisfiability(&schema, role, bounds);
                prop_assert!(
                    !outcome.is_sat(),
                    "pattern {:?} flagged role {} but the finder found a model",
                    finding.code,
                    schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                let outcome = type_satisfiability(&schema, ty, bounds);
                prop_assert!(
                    !outcome.is_sat(),
                    "pattern {:?} flagged type {} but the finder found a model",
                    finding.code,
                    schema.object_type(ty).name()
                );
            }
        }
    }

    /// Joint soundness: when Pattern 5 claims a set of roles can never all
    /// be populated together, a model populating *all* of them must not
    /// exist — even though each may be satisfiable on its own.
    #[test]
    fn joint_groups_are_truly_joint_unsatisfiable(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let report = validate(&schema);
        for group in report.joint_unsat_groups() {
            let targets: Vec<Target> =
                group.iter().map(|r| Target::Role(*r)).collect();
            let outcome = find_model(&schema, &targets, Bounds::small());
            prop_assert!(
                !outcome.is_sat(),
                "joint group {:?} was populated simultaneously",
                group.iter().map(|r| schema.role_label(*r)).collect::<Vec<_>>()
            );
        }
    }

    /// Clean schemas: no check fires (patterns, lints severity unsat, or
    /// extensions).
    #[test]
    fn clean_schemas_have_no_unsat_findings(seed in any::<u64>()) {
        let schema = generate_clean(&GenConfig::small(seed));
        let report = validate_all(&schema);
        prop_assert!(
            !report.has_unsat(),
            "clean schema flagged: {}",
            report.render(&schema)
        );
    }

    /// Clean tiny schemas are genuinely strongly satisfiable, not just
    /// pattern-silent.
    #[test]
    fn clean_tiny_schemas_are_strongly_satisfiable(seed in 0u64..64) {
        let schema = generate_clean(&GenConfig::sized(seed, 8));
        match strong_satisfiability(&schema, Bounds::default()) {
            Outcome::Satisfiable(pop) => {
                // The witness really satisfies the schema.
                let violations = orm_population::check(
                    &schema,
                    &pop,
                    orm_population::CheckOptions::default(),
                );
                prop_assert!(violations.is_empty(), "{violations:?}");
            }
            Outcome::BudgetExhausted => {} // inconclusive, not a failure
            Outcome::UnsatWithinBounds => {
                prop_assert!(false, "clean schema refuted: {}", orm_syntax::print(&schema));
            }
        }
    }

    /// E3 propagation only ever adds elements the finder also refutes.
    #[test]
    fn propagated_findings_are_sound(seed in 0u64..64) {
        let schema = generate(&tiny_config(seed));
        let validator = orm_core::Validator::with_settings(
            orm_core::ValidatorSettings::patterns_only().with_propagation(),
        );
        let report = validator.validate(&schema);
        for finding in report.by_code(CheckCode::E3) {
            for &role in &finding.unsat_roles {
                prop_assert!(
                    !role_satisfiability(&schema, role, Bounds::small()).is_sat(),
                    "E3 flagged satisfiable role {}",
                    schema.role_label(role)
                );
            }
            for &ty in &finding.unsat_types {
                prop_assert!(
                    !type_satisfiability(&schema, ty, Bounds::small()).is_sat(),
                    "E3 flagged satisfiable type {}",
                    schema.object_type(ty).name()
                );
            }
        }
    }
}

/// Every fault injector triggers exactly its target pattern on top of a
/// clean base schema.
#[test]
fn fault_injectors_trigger_their_patterns() {
    let base = generate_clean(&GenConfig::small(11));
    assert!(!validate(&base).has_unsat());
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        let faulty = inject(&base, *kind, i);
        let report = validate(&faulty);
        let expected = match kind {
            FaultKind::P1 => CheckCode::P1,
            FaultKind::P2 => CheckCode::P2,
            FaultKind::P3 => CheckCode::P3,
            FaultKind::P4 => CheckCode::P4,
            FaultKind::P5 => CheckCode::P5,
            FaultKind::P6 => CheckCode::P6,
            FaultKind::P7 => CheckCode::P7,
            FaultKind::P8 => CheckCode::P8,
            FaultKind::P9 => CheckCode::P9,
            // The beyond-DL kinds are not in ALL: their dooms live outside
            // the pattern checks and are pinned by the saturation suites.
            FaultKind::E5Trap | FaultKind::RingSplit | FaultKind::SpanFreq => {
                unreachable!("not a member of FaultKind::ALL")
            }
        };
        assert!(
            report.by_code(expected).count() >= 1,
            "{kind:?} did not trigger {expected:?}; report: {}",
            report.render(&faulty)
        );
    }
}

/// Table 1 ground truth: a ring-kind combination is compatible iff a
/// one-fact schema constrained by it is strongly satisfiable.
#[test]
fn ring_table_agrees_with_model_finding() {
    for kinds in RingKinds::all_subsets() {
        if kinds.is_empty() {
            continue;
        }
        let mut b = SchemaBuilder::new("ring_probe");
        let t = b.entity_type("T").expect("fresh");
        let f = b.fact_type("rel", t, t).expect("fresh");
        b.ring(f, kinds.iter()).expect("compatible players");
        let schema = b.finish();
        let expected = orm_core::ring::table::compatible(kinds);
        // Two-element domains decide ring compatibility exactly (see
        // orm-core::ring), so the small bounds are not just faster but
        // precisely sufficient.
        let outcome = strong_satisfiability(&schema, Bounds::small());
        assert_eq!(
            outcome.is_sat(),
            expected,
            "ring table disagrees with the model finder on {kinds}"
        );
    }
}

/// The paper's three satisfiability notions nest strictly: role ⟹ concept
/// ⟹ schema satisfiability (demonstrated on Fig. 1, which separates them).
#[test]
fn satisfiability_notions_nest() {
    let fixture = orm_core::fixtures::fig1();
    let schema = &fixture.schema;
    // Weak: the empty population works.
    assert!(orm_reasoner::weak_satisfiability(schema, Bounds::default()).is_sat());
    // Concept: PhdStudent can never be populated.
    let all_types: Vec<Target> = schema.object_types().map(|(t, _)| Target::Type(t)).collect();
    assert!(!find_model(schema, &all_types, Bounds::default()).is_sat());
}
