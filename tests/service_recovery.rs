//! Crash-recovery of the verdict-cache snapshot machinery: a process
//! that dies at an *arbitrary* point and restarts from a snapshot must
//! agree, verdict for verdict, with a process that never crashed — and a
//! snapshot damaged by the crash (torn write, bit rot) must be rejected
//! outright, degrading to a cold start, never to a stale verdict.
//!
//! Crash points are driven deterministically through
//! [`ExecCx::cancel_after_steps`] (the meter trips at an exact step
//! count), so every seed exercises a different but reproducible amount
//! of warm state at snapshot time. Interrupted proofs record nothing, so
//! whatever the snapshot captures is exactly the set of *completed*
//! verdicts — the recovery contract then follows from the cache's own
//! recording rules.

use orm_dl::{translate, ExecCx, SnapshotError};
use orm_gen::generate;
use orm_model::ObjectTypeId;
use orm_tests::mappable_config;
use proptest::prelude::*;

const DL_BUDGET: u64 = 120_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interrupt a sweep at an arbitrary metered step count, snapshot
    /// whatever completed, restore into a freshly translated process:
    /// every query must agree with a fresh sequential pass over a cold
    /// translation.
    #[test]
    fn snapshot_at_arbitrary_interrupt_points_round_trips(
        seed in any::<u64>(),
        cancel_at in 1u64..5_000,
    ) {
        let schema = generate(&mappable_config(seed));
        let survivor = translate(&schema);

        // The "process" does some work, gets interrupted mid-sweep (a
        // crash can land between any two proofs), then snapshots on the
        // way down.
        let interrupted = ExecCx::with_steps(DL_BUDGET).cancel_after_steps(cancel_at);
        let _ = survivor.type_sweep_cx(&schema, &interrupted);
        let _ = survivor.role_sweep_cx(&schema, &interrupted);
        let blob = survivor.snapshot();

        // The restarted process: same schema translated from scratch.
        let restarted = translate(&schema);
        let report = restarted.restore(&blob).expect("clean snapshot rejected");
        prop_assert_eq!(report.entries, survivor.shards().len());

        // Every verdict agrees with a never-crashed sequential pass.
        let fresh = translate(&schema);
        prop_assert_eq!(
            restarted.type_sweep(&schema, DL_BUDGET),
            fresh.type_sweep(&schema, DL_BUDGET),
            "restored type verdicts diverged from the fresh pass"
        );
        prop_assert_eq!(
            restarted.role_sweep(&schema, DL_BUDGET),
            fresh.role_sweep(&schema, DL_BUDGET),
            "restored role verdicts diverged from the fresh pass"
        );
    }

    /// A snapshot damaged in flight — truncated at any byte, or any
    /// single bit flipped — is rejected with the cache untouched, and
    /// the cold process still reaches every correct verdict.
    #[test]
    fn damaged_snapshots_are_rejected_and_degrade_to_cold(
        seed in any::<u64>(),
        cut_permille in 0usize..1_000,
        flip_permille in 0usize..1_000,
        bit in 0u8..8,
    ) {
        let schema = generate(&mappable_config(seed));
        let survivor = translate(&schema);
        survivor.type_sweep(&schema, DL_BUDGET);
        survivor.role_sweep(&schema, DL_BUDGET);
        let blob = survivor.snapshot();

        // Torn write: the tail never hit the disk.
        let cut = (blob.len() * cut_permille / 1_000).min(blob.len() - 1);
        let restarted = translate(&schema);
        prop_assert!(restarted.restore(&blob[..cut]).is_err(), "truncated blob accepted");
        prop_assert!(restarted.shards().is_empty(), "rejected restore left entries");

        // Bit rot: one flipped bit anywhere.
        let pos = (blob.len() * flip_permille / 1_000).min(blob.len() - 1);
        let mut rotten = blob.clone();
        rotten[pos] ^= 1 << bit;
        prop_assert!(restarted.restore(&rotten).is_err(), "bit-flipped blob accepted");
        prop_assert_eq!(restarted.cache_stats().corrupt_rejected, 2);

        // The cold start is still sound.
        let fresh = translate(&schema);
        prop_assert_eq!(
            restarted.type_sweep(&schema, DL_BUDGET),
            fresh.type_sweep(&schema, DL_BUDGET)
        );
    }

    /// Additions made *after* the snapshot revision revalidate the
    /// restored entries against the delta log instead of clearing them:
    /// a restored-then-edited process agrees with a never-crashed
    /// process that applied the same edits, with zero invalidations.
    #[test]
    fn addition_only_delta_logs_revalidate_without_reproving(
        seed in any::<u64>(),
        pick_a in any::<u64>(),
        pick_b in any::<u64>(),
    ) {
        let schema = generate(&mappable_config(seed));
        let types: Vec<ObjectTypeId> = schema.object_types().map(|(id, _)| id).collect();
        let a = types[pick_a as usize % types.len()];
        let b = types[pick_b as usize % types.len()];

        let survivor = translate(&schema);
        survivor.type_sweep(&schema, DL_BUDGET);
        survivor.role_sweep(&schema, DL_BUDGET);
        let blob = survivor.snapshot();

        let mut restarted = translate(&schema);
        restarted.restore(&blob).expect("clean snapshot rejected");

        // The same post-restart additions applied to the restored
        // process and to a never-crashed twin.
        let mut twin = translate(&schema);
        for t in [&mut restarted, &mut twin] {
            let mut edit = t.edit();
            edit.add_subtype(a, b);
            if a != b {
                edit.add_type_exclusion(a, b);
            }
        }
        prop_assert_eq!(
            restarted.type_sweep(&schema, DL_BUDGET),
            twin.type_sweep(&schema, DL_BUDGET),
            "restored + edited verdicts diverged from the never-crashed twin"
        );
        prop_assert_eq!(
            restarted.role_sweep(&schema, DL_BUDGET),
            twin.role_sweep(&schema, DL_BUDGET)
        );
        let stats = restarted.cache_stats();
        prop_assert_eq!(stats.invalidations, 0, "additions cleared the restored shards");
    }
}

/// The same story end to end through [`orm_reasoner::InteractiveSession`]
/// and [`orm_serve::ReasonerService`] — the two hosts a tool would
/// actually embed.
#[test]
fn session_and_service_recovery_end_to_end() {
    let schema = generate(&mappable_config(42));

    // InteractiveSession: snapshot, restart, warm hits only.
    let session = orm_reasoner::InteractiveSession::new(&schema);
    let before_types = session.type_sweep(&schema, DL_BUDGET);
    let before_roles = session.role_sweep(&schema, DL_BUDGET);
    let blob = session.snapshot();
    let restarted = orm_reasoner::InteractiveSession::new(&schema);
    restarted.restore(&blob).expect("session snapshot rejected");
    assert_eq!(restarted.type_sweep(&schema, DL_BUDGET), before_types);
    assert_eq!(restarted.role_sweep(&schema, DL_BUDGET), before_roles);
    assert_eq!(restarted.cache_stats().misses, 0, "warm restart re-proved");

    // ReasonerService: a snapshot of one host restores into the other —
    // the blob is host-agnostic (same schema, same translation).
    let service = orm_serve::ReasonerService::new(&schema, orm_serve::ServiceConfig::default());
    service.restore(&blob).expect("service rejected the session's snapshot");
    let cx = ExecCx::with_steps(DL_BUDGET);
    let served: Vec<_> = service
        .type_sweep(&schema, &cx)
        .expect("idle service shed")
        .into_iter()
        .map(|(ty, v)| (ty, orm_dl::DlOutcome::from(v)))
        .collect();
    assert_eq!(served, before_types);

    // A blob from a *different* schema is a stamp mismatch, not a panic.
    let other = generate(&mappable_config(43));
    let stranger = translate(&other);
    assert!(matches!(
        stranger.restore(&blob),
        Err(SnapshotError::StampMismatch | SnapshotError::Malformed(_))
    ));
}
