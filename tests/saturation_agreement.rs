//! Three-way agreement for the graph-saturation engine: saturation vs the
//! trail tableau vs the classic bounded model finder.
//!
//! On the **DL-expressible overlap** (no rings, no value constraints, no
//! subtype cycles) every decided saturation verdict must agree with the
//! tableau's — 100%, no exceptions; a tableau `ResourceLimit` vouches for
//! nothing and is skipped. Every saturation `Unsat` must additionally be
//! confirmed by the bounded finder, and every saturation `Sat` ships a
//! concrete witness that is re-certified here through
//! [`orm_population::check`] under the default strict semantics.
//!
//! **Beyond the overlap**, the suite pins known-verdict ground truths per
//! ring-constraint kind: every single ring kind admits a verified model,
//! and a battery of incompatible combinations (plus the acyclic+mandatory
//! trap and a value-starved frequency) is `Unsat` *with a `beyond_dl`
//! refutation* while the tableau — whose translation reports the deciding
//! constructs as unmapped — cannot refute them. These are exactly the
//! cases the saturation engine exists for.
//!
//! The cached query path (shared [`SaturationShards`]) and the parallel
//! sweeps (`type_sweep_par` / `role_sweep_par` over `fan_out_cx`) are
//! differentially pinned against the uncached sequential drivers.

use orm_dl::{
    translate, DlOutcome, ExecCx, ModelGraph, SaturationEngine, SaturationOutcome, SaturationShards,
};
use orm_gen::{frequency_value_scenario, generate, ring_scenario};
use orm_model::{Constraint, Mandatory, RingKind, Schema};
use orm_population::{check, CheckOptions, Population};
use orm_reasoner::{role_satisfiability, type_satisfiability, Bounds};
use orm_tests::{mappable_config, tiny_config};
use proptest::prelude::*;
use std::sync::Arc;

const DL_BUDGET: u64 = 120_000;

/// Convert a saturation witness into a population and certify it against
/// the checker the engine's internal verifier mirrors. A `Sat` whose
/// witness fails here would be a soundness bug in the engine.
fn certify(schema: &Schema, model: &ModelGraph) {
    let mut pop = Population::new();
    for (ty, values) in &model.extents {
        for v in values {
            pop.add_instance(*ty, v.clone());
        }
    }
    for (fact, tuples) in &model.facts {
        for (a, b) in tuples {
            pop.add_fact(*fact, a.clone(), b.clone());
        }
    }
    let violations = check(schema, &pop, CheckOptions::default());
    assert!(violations.is_empty(), "saturation witness is not conformant: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DL-expressible overlap: decided saturation verdicts agree with the
    /// tableau on every role and type, refutations never claim to be
    /// beyond the DL, `Unsat` is confirmed by the bounded finder, and
    /// `Sat` witnesses certify.
    #[test]
    fn saturation_and_tableau_agree_on_mappable(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let idx = schema.index();
        if schema.object_types().any(|(t, _)| idx.on_subtype_cycle(t)) {
            // Subtype loops are outside the mappable fragment.
            return Ok(());
        }
        let translation = translate(&schema);
        prop_assert!(translation.unmapped.is_empty(), "{:?}", translation.unmapped);
        let engine = SaturationEngine::new(&schema);
        let cx = ExecCx::unlimited();

        for (role, _) in schema.roles() {
            match engine.check_role(role, &cx) {
                SaturationOutcome::Sat(model) => {
                    certify(&schema, &model);
                    prop_assert!(model.role_populated(&schema, role));
                    prop_assert!(
                        translation.role_satisfiable(role, DL_BUDGET) != DlOutcome::Unsat,
                        "tableau refuted role {} but saturation certified a model",
                        schema.role_label(role)
                    );
                }
                SaturationOutcome::Unsat(refutation) => {
                    prop_assert!(
                        !refutation.beyond_dl,
                        "mappable-fragment refutation claims beyond-DL: {refutation:?}"
                    );
                    prop_assert!(
                        translation.role_satisfiable(role, DL_BUDGET) != DlOutcome::Sat,
                        "saturation refuted role {} but the tableau says Sat",
                        schema.role_label(role)
                    );
                    prop_assert!(
                        !role_satisfiability(&schema, role, Bounds::small()).is_sat(),
                        "saturation refuted role {} but the finder found a model",
                        schema.role_label(role)
                    );
                }
                _ => {}
            }
        }
        for (ty, _) in schema.object_types() {
            match engine.check_type(ty, &cx) {
                SaturationOutcome::Sat(model) => {
                    certify(&schema, &model);
                    prop_assert!(model.type_populated(ty));
                    prop_assert!(
                        translation.type_satisfiable(ty, DL_BUDGET) != DlOutcome::Unsat,
                        "tableau refuted type {} but saturation certified a model",
                        schema.object_type(ty).name()
                    );
                }
                SaturationOutcome::Unsat(refutation) => {
                    prop_assert!(!refutation.beyond_dl);
                    prop_assert!(
                        translation.type_satisfiable(ty, DL_BUDGET) != DlOutcome::Sat,
                        "saturation refuted type {} but the tableau says Sat",
                        schema.object_type(ty).name()
                    );
                    prop_assert!(
                        !type_satisfiability(&schema, ty, Bounds::small()).is_sat(),
                        "saturation refuted type {} but the finder found a model",
                        schema.object_type(ty).name()
                    );
                }
                _ => {}
            }
        }
    }

    /// Full construct mix (rings, values, frequencies included): every
    /// saturation `Unsat` is confirmed by the bounded finder, and every
    /// `Sat` witness certifies. The finder knows nothing of the DL
    /// translation, so this covers exactly the fragment the tableau
    /// cannot see.
    #[test]
    fn finder_confirms_saturation_on_full_mix(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let engine = SaturationEngine::new(&schema);
        let cx = ExecCx::unlimited();
        for (role, _) in schema.roles() {
            match engine.check_role(role, &cx) {
                SaturationOutcome::Sat(model) => certify(&schema, &model),
                SaturationOutcome::Unsat(_) => prop_assert!(
                    !role_satisfiability(&schema, role, Bounds::small()).is_sat(),
                    "saturation refuted role {} but the finder found a model (seed {seed})",
                    schema.role_label(role)
                ),
                _ => {}
            }
        }
        for (ty, _) in schema.object_types() {
            match engine.check_type(ty, &cx) {
                SaturationOutcome::Sat(model) => certify(&schema, &model),
                SaturationOutcome::Unsat(_) => prop_assert!(
                    !type_satisfiability(&schema, ty, Bounds::small()).is_sat(),
                    "saturation refuted type {} but the finder found a model (seed {seed})",
                    schema.object_type(ty).name()
                ),
                _ => {}
            }
        }
    }

    /// Cached vs uncached: engines sharing [`SaturationShards`] answer
    /// exactly like a cold engine, on the miss pass and on the pass served
    /// from memory.
    #[test]
    fn cached_and_uncached_saturation_agree(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let cache = Arc::new(SaturationShards::new());
        let cx = ExecCx::unlimited();
        let mut decided = 0usize;
        for pass in 0..2 {
            let warm = SaturationEngine::with_cache(&schema, Arc::clone(&cache));
            let cold = SaturationEngine::new(&schema);
            for (role, _) in schema.roles() {
                let outcome = warm.check_role(role, &cx);
                decided += usize::from(pass == 0 && outcome.is_decided());
                prop_assert_eq!(
                    outcome.verdict(),
                    cold.check_role(role, &cx).verdict(),
                    "cache diverged on role {} (seed {seed}, pass {pass})",
                    schema.role_label(role)
                );
            }
            for (ty, _) in schema.object_types() {
                let outcome = warm.check_type(ty, &cx);
                decided += usize::from(pass == 0 && outcome.is_decided());
                prop_assert_eq!(
                    outcome.verdict(),
                    cold.check_type(ty, &cx).verdict(),
                    "cache diverged on type {} (seed {seed}, pass {pass})",
                    schema.object_type(ty).name()
                );
            }
        }
        // Only genuine verdicts are cached; each decided target of the
        // first pass must be served from memory on the second.
        let stats = cache.stats();
        prop_assert!(
            stats.hits >= decided as u64,
            "second pass was not served from the shards ({decided} decided): {stats:?}"
        );
    }

    /// Sequential vs `fan_out_cx` sweeps: verdict for verdict, order for
    /// order, at several thread counts, from cold caches each time.
    #[test]
    fn sequential_and_parallel_sweeps_agree(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let cx = ExecCx::unlimited();
        let sequential = SaturationEngine::new(&schema);
        let seq_types = sequential.type_sweep(&cx);
        let seq_roles = sequential.role_sweep(&cx);
        for threads in [1usize, 2, 8] {
            let par = SaturationEngine::new(&schema);
            let types = par.type_sweep_par(threads, &cx);
            prop_assert!(types.is_complete(), "type sweep incomplete at {threads} threads");
            for (i, got) in types.results.iter().enumerate() {
                let got = got.as_ref().expect("complete batch");
                prop_assert_eq!(
                    got.verdict(),
                    seq_types[i].1.verdict(),
                    "parallel type sweep diverged at {} threads (seed {seed})",
                    threads
                );
            }
            let roles = par.role_sweep_par(threads, &cx);
            prop_assert!(roles.is_complete(), "role sweep incomplete at {threads} threads");
            for (i, got) in roles.results.iter().enumerate() {
                let got = got.as_ref().expect("complete batch");
                prop_assert_eq!(
                    got.verdict(),
                    seq_roles[i].1.verdict(),
                    "parallel role sweep diverged at {} threads (seed {seed})",
                    threads
                );
            }
        }
    }

    /// An interrupted run returns the interrupt, never a verdict — and
    /// never touches the cache, so it cannot launder a stale answer.
    #[test]
    fn interrupted_runs_never_vouch(seed in any::<u64>()) {
        let schema = generate(&tiny_config(seed));
        let engine = SaturationEngine::new(&schema);
        let cx = ExecCx::unlimited();
        cx.cancel();
        for (role, _) in schema.roles() {
            prop_assert!(matches!(engine.check_role(role, &cx), SaturationOutcome::Cancelled));
        }
        for (ty, _) in schema.object_types() {
            prop_assert!(matches!(engine.check_type(ty, &cx), SaturationOutcome::Cancelled));
        }
        let stats = engine.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, 0, "cancelled runs probed the cache");
    }
}

/// Every single ring kind admits a verified model on the canonical
/// reflexive-fact scenario: `Sat` with a certifying witness for the fact
/// type's roles and the player type, even though the translation reports
/// the ring as unmapped.
#[test]
fn single_ring_kinds_have_verified_models() {
    for kind in RingKind::ALL {
        let schema = ring_scenario(&[kind]);
        let translation = translate(&schema);
        assert!(!translation.unmapped.is_empty(), "{kind:?}: ring unexpectedly mapped");
        let engine = SaturationEngine::new(&schema);
        let cx = ExecCx::unlimited();
        for (role, _) in schema.roles() {
            match engine.check_role(role, &cx) {
                SaturationOutcome::Sat(model) => {
                    certify(&schema, &model);
                    assert!(model.role_populated(&schema, role));
                }
                other => panic!("{kind:?}: expected Sat for a lone ring kind, got {other:?}"),
            }
        }
    }
}

/// The headline gap the saturation engine closes: ring-constraint
/// unsatisfiability the DL translation cannot express. Five pinned
/// scenarios (four ring, one value-starved frequency), each `Unsat` with
/// a `beyond_dl` refutation while the tableau — blind to the unmapped
/// constructs — cannot refute the same element.
#[test]
fn beyond_dl_unsat_pins_saturation_decides_where_tableau_cannot() {
    let mut scenarios: Vec<(&str, Schema)> = vec![
        ("acyclic+symmetric", ring_scenario(&[RingKind::Acyclic, RingKind::Symmetric])),
        ("asymmetric+symmetric", ring_scenario(&[RingKind::Asymmetric, RingKind::Symmetric])),
        (
            "antisymmetric+symmetric+intransitive",
            ring_scenario(&[RingKind::Antisymmetric, RingKind::Symmetric, RingKind::Intransitive]),
        ),
    ];
    // The acyclic+mandatory trap (Extension 5): not an incompatible kind
    // table entry — the constraint *pair* is what dooms the roles.
    let mut trap = ring_scenario(&[RingKind::Acyclic]);
    let r1 = {
        let (_, ft) = trap.fact_types().next().expect("one fact");
        ft.first()
    };
    trap.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![r1] }));
    scenarios.push(("acyclic+mandatory trap", trap));
    // Value starvation (Pattern 4 shape): two admissible values, minimum
    // of three partners — unsat only through the unmapped value constraint.
    scenarios.push(("value-starved frequency", frequency_value_scenario(2, 3, Some(5))));

    let mut ring_unsat_beyond_dl = 0usize;
    for (name, schema) in &scenarios {
        let translation = translate(schema);
        assert!(!translation.unmapped.is_empty(), "{name}: nothing unmapped");
        let engine = SaturationEngine::new(schema);
        let cx = ExecCx::unlimited();
        let mut saw_unsat = false;
        for (role, _) in schema.roles() {
            match engine.check_role(role, &cx) {
                SaturationOutcome::Unsat(refutation) => {
                    saw_unsat = true;
                    assert!(refutation.beyond_dl, "{name}: refutation not beyond DL");
                    assert!(!refutation.origins.is_empty(), "{name}: refutation names no origin");
                    assert_ne!(
                        translation.role_satisfiable(role, DL_BUDGET),
                        DlOutcome::Unsat,
                        "{name}: the tableau refuted role {} on its own",
                        schema.role_label(role)
                    );
                }
                SaturationOutcome::Sat(model) => certify(schema, &model),
                other => panic!("{name}: undecided outcome {other:?}"),
            }
        }
        assert!(saw_unsat, "{name}: no role was refuted");
        if name.contains("acyclic") || name.contains("symmetric") {
            ring_unsat_beyond_dl += 1;
        }
    }
    assert!(
        ring_unsat_beyond_dl >= 3,
        "fewer than three ring-unsat scenarios decided beyond the DL"
    );
}
