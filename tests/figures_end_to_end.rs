//! End-to-end reproduction of every figure: the `.orm` textual form of each
//! paper example is parsed, validated, and checked against the paper's
//! claims. This is the headline table of EXPERIMENTS.md, as a test.

use orm_core::{fixtures, validate, validate_all, CheckCode, Severity};
use orm_syntax::{parse, print, verbalize};
use std::collections::BTreeSet;

/// Each figure, validated from its **builder** fixture.
#[test]
fn all_fixtures_match_paper_claims() {
    for fixture in fixtures::all() {
        let report = validate(&fixture.schema);
        let fired: BTreeSet<CheckCode> = report.findings.iter().map(|f| f.code).collect();
        let expected: BTreeSet<CheckCode> = fixture.expect_codes.iter().copied().collect();
        assert_eq!(fired, expected, "{}: {}", fixture.id, fixture.paper_claim);
    }
}

/// Each figure survives a syntax round trip and still validates the same.
#[test]
fn figures_validate_identically_after_round_trip() {
    for fixture in fixtures::all() {
        let text = print(&fixture.schema);
        let reparsed =
            parse(&text).unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", fixture.id));
        let before = validate(&fixture.schema);
        let after = validate(&reparsed);
        let codes =
            |r: &orm_core::Report| r.findings.iter().map(|f| f.code).collect::<BTreeSet<_>>();
        assert_eq!(codes(&before), codes(&after), "{}", fixture.id);
        // Unsat role *labels* survive the round trip too.
        let labels = |s: &orm_model::Schema, r: &orm_core::Report| {
            r.unsat_roles().iter().map(|x| s.role_label(*x).to_owned()).collect::<BTreeSet<_>>()
        };
        assert_eq!(labels(&fixture.schema, &before), labels(&reparsed, &after), "{}", fixture.id);
    }
}

/// The Fig. 1 narrative, written directly in the schema language.
#[test]
fn fig1_from_text() {
    let schema = parse(
        r#"
        schema fig1 {
          entity Person;
          entity Student subtype-of Person;
          entity Employee subtype-of Person;
          entity PhdStudent subtype-of Student, Employee;
          exclusive { Student, Employee };
        }
        "#,
    )
    .expect("valid text");
    let report = validate(&schema);
    assert!(report.has_unsat());
    let phd = schema.object_type_by_name("PhdStudent").expect("declared");
    assert!(report.unsat_types().contains(&phd));
    // The schema as a whole is still *weakly* satisfiable — the paper's
    // point about Fig. 1 — which the bounded finder certifies.
    let outcome = orm_reasoner::weak_satisfiability(&schema, orm_reasoner::Bounds::default());
    assert!(outcome.is_sat());
}

/// Fig. 15's toggles: disabling the only relevant pattern silences the
/// finding; enabling the formation-rule lints surfaces rule 6 on Fig. 14.
#[test]
fn validator_settings_reproduce_fig15_behaviour() {
    let fig3 = fixtures::fig3();
    let silenced = orm_core::Validator::with_settings(
        orm_core::ValidatorSettings::patterns_only().without(CheckCode::P2),
    );
    assert!(!silenced.validate(&fig3.schema).has_unsat());

    let fig14 = fixtures::fig14();
    let all = validate_all(&fig14.schema);
    assert!(all.by_code(CheckCode::Fr6).count() >= 1, "rule 6 lint must fire on Fig. 14");
    assert!(!all.has_unsat(), "Fig. 14 stays satisfiable");
    assert!(all.by_code(CheckCode::Fr6).all(|f| f.severity == Severity::Guideline));
}

/// Verbalization covers every fixture without panicking and mentions every
/// object type by name (the paper's pseudo-NL promise).
#[test]
fn figures_verbalize_completely() {
    for fixture in fixtures::all() {
        let text = verbalize(&fixture.schema);
        for (_, ot) in fixture.schema.object_types() {
            assert!(text.contains(ot.name()), "{}: verbalization omits {}", fixture.id, ot.name());
        }
    }
}

/// Two independent contradictions over one element, pinned byte for byte:
/// the generator's `multi_contradiction(2)` schema diagnoses to exactly a
/// two-core family, and the rendered `Diagnosis` — culprit statements, the
/// "and independently" section, and all nine ranked repair alternatives —
/// is deterministic down to the exact string. Any drift in enumeration
/// order, verbalization, or repair ranking shows up here first.
#[test]
fn two_contradiction_diagnosis_is_pinned() {
    let (schema, doomed) = orm_gen::multi_contradiction(2);
    let diagnoses = orm_reasoner::diagnose(&schema, 500_000);
    assert_eq!(diagnoses.len(), 1, "exactly the doomed type: {diagnoses:?}");
    let d = &diagnoses[0];
    assert_eq!(d.element, orm_reasoner::DiagnosedElement::Type(doomed));
    assert_eq!(d.family.len(), 2, "both contradictions enumerated");
    assert!(d.family.complete && !d.family.truncated);
    assert_eq!(d.repairs.len(), 9, "3 × 3 culprit choices");
    assert!(d.repairs.iter().all(|r| r.set.verified && r.set.len() == 2));
    let expected = "`Doomed` can never be populated because:\n  \
         - Each Doomed is a A0.\n  \
         - Each Doomed is a B0.\n  \
         - No instance is more than one of A0, B0.\n  \
         (minimal, 3 DL axiom(s) in the unsat core)\n  \
         and independently (contradiction 2 of 2):\n  \
         - Each Doomed is a A1.\n  \
         - Each Doomed is a B1.\n  \
         - No instance is more than one of A1, B1.\n  \
         To repair, drop one of: \
         (1) Each Doomed is a A0. together with No instance is more than one of A1, B1. \
         (2) Each Doomed is a B0. together with No instance is more than one of A1, B1. \
         (3) No instance is more than one of A0, B0. together with No instance is more than one of A1, B1. \
         (4) Each Doomed is a A1. together with No instance is more than one of A0, B0. \
         (5) Each Doomed is a B1. together with No instance is more than one of A0, B0. \
         (6) Each Doomed is a A0. together with Each Doomed is a B1. \
         (7) Each Doomed is a B0. together with Each Doomed is a B1. \
         (8) Each Doomed is a A0. together with Each Doomed is a A1. \
         (9) Each Doomed is a B0. together with Each Doomed is a A1.";
    assert_eq!(format!("{d}"), expected);
}

/// A non-DL refutation verbalized end to end, pinned byte for byte: the
/// saturation engine refutes the roles of an acyclic+symmetric `reports to`
/// fact — a verdict the tableau cannot reach, since its translation drops
/// ring constraints — and the diagnosis names the ring declaration in the
/// paper's pseudo-NL register. Any drift in the verbalizer, the ring-kind
/// enumeration order, or the beyond-DL attribution footer shows up here.
#[test]
fn saturation_ring_diagnosis_is_pinned() {
    let schema = parse(
        r#"
        schema org {
          entity Employee;
          fact reports_to (Employee as r1, Employee as r2) reading "reports to";
          ring reports_to { acyclic, symmetric };
        }
        "#,
    )
    .expect("valid text");
    let cx = orm_dl::ExecCx::unlimited();
    let diagnoses = orm_reasoner::diagnose_saturation(&schema, &cx);
    assert_eq!(diagnoses.len(), 2, "both roles of the doomed ring fact: {diagnoses:?}");
    let expected = "`r1` can never be populated because:\n  \
         - *reports to* is declared acyclic and symmetric.\n  \
         (outside the DL fragment — decided by the saturation engine)";
    assert_eq!(format!("{}", diagnoses[0]), expected);
    // The tableau, blind to the unmapped ring, cannot refute the same role.
    let translation = orm_dl::translate(&schema);
    assert!(!translation.unmapped.is_empty());
    for (role, _) in schema.roles() {
        assert_ne!(
            translation.role_satisfiable(role, 500_000),
            orm_dl::DlOutcome::Unsat,
            "the tableau refuted {} without the ring",
            schema.role_label(role)
        );
    }
}

/// The appendix algorithms attach explanations; every unsatisfiable finding
/// must name at least one culprit element (except pure propagation).
#[test]
fn unsat_findings_carry_culprits() {
    for fixture in fixtures::all() {
        let report = validate_all(&fixture.schema);
        for finding in &report.findings {
            if finding.severity == Severity::Unsatisfiable && finding.code != CheckCode::E3 {
                assert!(
                    !finding.culprits.is_empty(),
                    "{}: finding without culprits: {}",
                    fixture.id,
                    finding.message
                );
            }
        }
    }
}
