//! Incremental-vs-fresh agreement for the delta-aware verdict cache
//! (PR 4): across random interleaved sequences of TBox edits and
//! satisfiability/subsumption queries, a **persistent** `SatCache` /
//! `SatShards` must return verdicts identical to proving every query
//! from scratch against the TBox's current state — additions retain or
//! revalidate entries, destructive retractions clear wholesale, and
//! neither path may ever leak a stale verdict. This is the safety
//! property behind the editor-in-the-loop optimization (the per-entry
//! retention rules in `orm_dl::cache`); the per-rule unit tests live
//! next to the cache itself.

use orm_dl::concept::{Concept, RoleExpr};
use orm_dl::tableau::{satisfiable, subsumes};
use orm_dl::tbox::TBox;
use orm_dl::{SatCache, SatShards};
use proptest::prelude::*;

const BUDGET: u64 = 150_000;
const ATOMS: usize = 4;
const ROLES: usize = 2;

/// One step of an editing script over a fixed small vocabulary. All
/// index operands are taken modulo the vocabulary size on application.
#[derive(Clone, Debug)]
enum Edit {
    /// `Aᵢ ⊑ Aⱼ`
    SubGci(usize, usize),
    /// `Aᵢ ⊓ Aⱼ ⊑ ⊥`
    ExclGci(usize, usize),
    /// `Aᵢ ⊑ ∃Rᵣ.⊤`
    ExistsGci(usize, usize),
    /// `Aᵢ ⊑ ∀Rᵣ.Aⱼ`
    ForallGci(usize, usize, usize),
    /// `Rᵣ ⊑ Rₛ`
    RoleIncl(usize, usize),
    /// `Rᵣ` disjoint `Rₛ`
    Disjoint(usize, usize),
    /// Retract the newest GCI (destructive; no-op on an axiom-free TBox).
    Retract,
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Edit::SubGci(i, j)),
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Edit::ExclGci(i, j)),
        ((0usize..ATOMS), (0usize..ROLES)).prop_map(|(i, r)| Edit::ExistsGci(i, r)),
        ((0usize..ATOMS), (0usize..ROLES), (0usize..ATOMS))
            .prop_map(|(i, r, j)| Edit::ForallGci(i, r, j)),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Edit::RoleIncl(r, s)),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Edit::Disjoint(r, s)),
        Just(Edit::Retract),
    ]
}

/// The fixed vocabulary every script runs over (interned up front, so
/// edits are exactly the axiom mutations).
fn vocabulary() -> (TBox, Vec<Concept>, Vec<RoleExpr>) {
    let mut t = TBox::new();
    let atoms = (0..ATOMS).map(|i| Concept::Atomic(t.atom(format!("A{i}")))).collect();
    let roles = (0..ROLES).map(|i| RoleExpr::direct(t.role(format!("R{i}")))).collect();
    (t, atoms, roles)
}

/// Apply one edit; returns whether it was destructive. (The addition arms
/// discard the [`orm_dl::AxiomId`] the mutators hand back — these scripts
/// exercise cache retention, not provenance.)
fn apply(t: &mut TBox, atoms: &[Concept], roles: &[RoleExpr], edit: &Edit) -> bool {
    match *edit {
        Edit::SubGci(i, j) => {
            t.gci(atoms[i % ATOMS].clone(), atoms[j % ATOMS].clone());
        }
        Edit::ExclGci(i, j) => {
            t.gci(
                Concept::and([atoms[i % ATOMS].clone(), atoms[j % ATOMS].clone()]),
                Concept::Bottom,
            );
        }
        Edit::ExistsGci(i, r) => {
            t.gci(atoms[i % ATOMS].clone(), Concept::some(roles[r % ROLES]));
        }
        Edit::ForallGci(i, r, j) => {
            t.gci(
                atoms[i % ATOMS].clone(),
                Concept::ForAll(roles[r % ROLES], Box::new(atoms[j % ATOMS].clone())),
            );
        }
        Edit::RoleIncl(r, s) => {
            t.role_inclusion(roles[r % ROLES], roles[s % ROLES]);
        }
        Edit::Disjoint(r, s) => {
            t.disjoint(roles[r % ROLES], roles[s % ROLES]);
        }
        Edit::Retract => {
            if !t.gcis().is_empty() {
                let last = t.gcis().len() - 1;
                t.retract_gci(last);
                return true;
            }
            return false;
        }
    }
    false
}

/// The query battery an editor re-runs after each edit: per-atom
/// satisfiability plus the ordered subsumption pairs.
fn queries(atoms: &[Concept]) -> Vec<Concept> {
    let mut out: Vec<Concept> = atoms.to_vec();
    for a in atoms {
        for b in atoms {
            if a != b {
                out.push(Concept::and([a.clone(), Concept::not(b.clone())]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After every step of a random edit script, the persistent caches
    /// (sequential and sharded) answer the whole battery exactly as
    /// from-scratch tableau runs against the current TBox do — and when
    /// the script is addition-only, the persistent caches never clear
    /// wholesale.
    #[test]
    fn interleaved_edits_agree_with_fresh(
        edits in prop::collection::vec(edit_strategy(), 1..10),
    ) {
        let (mut tbox, atoms, roles) = vocabulary();
        let battery = queries(&atoms);
        let mut cache = SatCache::new();
        let shards = SatShards::with_shards(4);
        let mut any_destructive = false;
        // Step 0 (no edits yet) primes both caches; each subsequent step
        // applies one edit and replays the battery.
        for step in 0..=edits.len() {
            if step > 0 {
                any_destructive |= apply(&mut tbox, &atoms, &roles, &edits[step - 1]);
            }
            for q in &battery {
                let fresh = satisfiable(&tbox, q, BUDGET);
                prop_assert_eq!(
                    cache.satisfiable(&tbox, q, BUDGET), fresh,
                    "SatCache diverged from fresh run on {} at step {} of {:?}",
                    q, step, edits
                );
                prop_assert_eq!(
                    shards.satisfiable(&tbox, q, BUDGET), fresh,
                    "SatShards diverged from fresh run on {} at step {} of {:?}",
                    q, step, edits
                );
            }
            // Subsumption through the id-keyed entry point too.
            for a in &atoms {
                for b in &atoms {
                    if a == b {
                        continue;
                    }
                    let fresh = subsumes(&tbox, b, a, BUDGET);
                    prop_assert_eq!(cache.subsumes(&tbox, b, a, BUDGET), fresh);
                    prop_assert_eq!(shards.subsumes(&tbox, b, a, BUDGET), fresh);
                }
            }
        }
        if !any_destructive {
            prop_assert_eq!(
                cache.stats().invalidations, 0,
                "an addition-only script wholesale-cleared the SatCache"
            );
            prop_assert_eq!(
                shards.stats().invalidations, 0,
                "an addition-only script wholesale-cleared a shard"
            );
        }
    }

    /// The end state agrees with a fresh-cache run of the *final* TBox:
    /// replaying the battery on a cache that lived through the whole
    /// script returns exactly what a cold cache computes.
    #[test]
    fn final_state_matches_cold_cache(
        edits in prop::collection::vec(edit_strategy(), 1..12),
    ) {
        let (mut tbox, atoms, roles) = vocabulary();
        let battery = queries(&atoms);
        let mut warm = SatCache::new();
        for edit in &edits {
            // Query between edits so the cache has entries to carry over.
            for q in battery.iter().take(3) {
                warm.satisfiable(&tbox, q, BUDGET);
            }
            apply(&mut tbox, &atoms, &roles, edit);
        }
        let mut cold = SatCache::new();
        for q in &battery {
            prop_assert_eq!(
                warm.satisfiable(&tbox, q, BUDGET),
                cold.satisfiable(&tbox, q, BUDGET),
                "survivor entries diverged from a cold cache on {} after {:?}",
                q, edits
            );
        }
    }
}

/// Deterministic end-to-end check of the editor loop the proptests
/// randomize: a growing schema-like TBox whose battery is re-run after
/// each addition, with the cache visibly retaining work and one final
/// retraction clearing it.
#[test]
fn editor_loop_retains_then_clears() {
    let (mut tbox, atoms, roles) = vocabulary();
    let battery = queries(&atoms);
    let mut cache = SatCache::new();
    for q in &battery {
        cache.satisfiable(&tbox, q, BUDGET);
    }
    let misses_after_population = cache.stats().misses;

    // Three monotone edits; every re-run battery answers from the cache
    // except the (few) entries the edits genuinely touch.
    tbox.gci(atoms[0].clone(), atoms[1].clone());
    tbox.gci(Concept::and([atoms[2].clone(), atoms[3].clone()]), Concept::Bottom);
    tbox.gci(atoms[1].clone(), Concept::some(roles[0]));
    for q in &battery {
        let cached = cache.satisfiable(&tbox, q, BUDGET);
        assert_eq!(cached, satisfiable(&tbox, q, BUDGET), "stale verdict for {q}");
    }
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 0, "additions must not clear wholesale");
    assert!(stats.retained + stats.revalidated > 0, "no entry survived: {stats:?}");
    assert!(
        stats.misses < misses_after_population * 2,
        "the edit re-proved more than the whole battery: {stats:?}"
    );

    // The modeler undoes the exclusion: destructive, so the next query
    // rebuilds from a clean slate — and sees the un-doomed verdicts.
    tbox.retract_gci(1);
    for q in &battery {
        assert_eq!(cache.satisfiable(&tbox, q, BUDGET), satisfiable(&tbox, q, BUDGET));
    }
    assert_eq!(cache.stats().invalidations, 1);
}
