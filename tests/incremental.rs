//! The incremental validator must be indistinguishable from full
//! re-validation across random edit sequences — the safety property behind
//! the interactive-modeling optimization (DESIGN.md §7.3).

use orm_core::{EditHint, Validator, ValidatorSettings};
use orm_gen::{generate_clean, GenConfig};
use orm_model::{Constraint, ConstraintId, ConstraintKind, Frequency, Mandatory, Schema};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An edit script step: add or remove a constraint of a given family on a
/// role picked by index.
#[derive(Clone, Debug)]
enum Edit {
    AddMandatory(usize),
    AddFrequency(usize, u32),
    RemoveNewest,
    AddSubtype(usize, usize),
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0usize..16).prop_map(Edit::AddMandatory),
        ((0usize..16), (1u32..4)).prop_map(|(r, m)| Edit::AddFrequency(r, m)),
        Just(Edit::RemoveNewest),
        ((0usize..8), (0usize..8)).prop_map(|(a, b)| Edit::AddSubtype(a, b)),
    ]
}

fn apply(schema: &mut Schema, edit: &Edit, added: &mut Vec<ConstraintId>) -> Option<EditHint> {
    let roles: Vec<_> = schema.roles().map(|(id, _)| id).collect();
    let types: Vec<_> = schema.object_types().map(|(id, _)| id).collect();
    match edit {
        Edit::AddMandatory(i) if !roles.is_empty() => {
            let role = roles[i % roles.len()];
            added.push(
                schema.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![role] })),
            );
            Some(EditHint::Constraint(ConstraintKind::Mandatory))
        }
        Edit::AddFrequency(i, min) if !roles.is_empty() => {
            let role = roles[i % roles.len()];
            added.push(schema.add_constraint(Constraint::Frequency(Frequency {
                roles: vec![role],
                min: *min,
                max: Some(min + 3),
            })));
            Some(EditHint::Constraint(ConstraintKind::Frequency))
        }
        Edit::RemoveNewest => {
            let id = added.pop()?;
            let removed = schema.remove_constraint(id)?;
            Some(EditHint::Constraint(removed.kind()))
        }
        Edit::AddSubtype(a, b) if types.len() >= 2 => {
            let (sub, sup) = (types[a % types.len()], types[b % types.len()]);
            schema.add_subtype(sub, sup).ok()?;
            Some(EditHint::Subtyping)
        }
        _ => None,
    }
}

fn finding_set(report: &orm_core::Report) -> BTreeSet<String> {
    report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                f.code, f.unsat_roles, f.joint_unsat_roles, f.unsat_types
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every edit in a random script, incremental == full.
    #[test]
    fn incremental_equals_full(
        seed in 0u64..1000,
        edits in prop::collection::vec(edit_strategy(), 1..10),
    ) {
        let mut schema = generate_clean(&GenConfig::small(seed));
        let incremental = Validator::new();
        incremental.validate(&schema); // prime the cache
        let mut added = Vec::new();
        for edit in &edits {
            let Some(hint) = apply(&mut schema, edit, &mut added) else { continue };
            let inc = incremental.validate_incremental(&schema, &hint);
            let full = Validator::new().validate(&schema);
            prop_assert_eq!(
                finding_set(&inc),
                finding_set(&full),
                "divergence after {:?}",
                edit
            );
        }
    }

    /// Same property with propagation enabled (E3 is rebuilt from the
    /// merged seed on every incremental run).
    #[test]
    fn incremental_equals_full_with_propagation(
        seed in 0u64..1000,
        edits in prop::collection::vec(edit_strategy(), 1..8),
    ) {
        let settings = ValidatorSettings::all();
        let mut schema = generate_clean(&GenConfig::small(seed));
        let incremental = Validator::with_settings(settings.clone());
        incremental.validate(&schema);
        let mut added = Vec::new();
        for edit in &edits {
            let Some(hint) = apply(&mut schema, edit, &mut added) else { continue };
            let inc = incremental.validate_incremental(&schema, &hint);
            let full = Validator::with_settings(settings.clone()).validate(&schema);
            prop_assert_eq!(
                finding_set(&inc),
                finding_set(&full),
                "divergence after {:?}",
                edit
            );
        }
    }
}
