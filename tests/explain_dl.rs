//! Differential guarantees of unsat-core extraction (PR 5):
//!
//! * **Soundness** — every extracted core refutes its query on its own
//!   (`restrict_to(core)` proves `Unsat`);
//! * **Minimality** — removing any *single* axiom from a core flagged
//!   `minimal` flips the restricted verdict to `Sat`;
//! * **Agreement** — the explanation outcome classifies exactly like the
//!   plain `satisfiable` verdict, and the cached explanation path
//!   (`SatCache::explain` / `Translation::explain_*`) classifies like the
//!   uncached `explain_unsat`;
//! * **Attribution** — through the ORM pipeline, every core axiom of a
//!   translated schema maps to a recorded [`orm_dl::AxiomOrigin`], so a
//!   diagnosis can always name at least one schema construct.
//!
//! The MUS-enumeration PR extends the battery to whole core *families*
//! and their hitting-set repairs:
//!
//! * **Family soundness/minimality** — every enumerated MUS refutes
//!   alone and loses refutation power with any single axiom removed;
//! * **Incomparability** — enumerated MUSes are pairwise ⊆-incomparable
//!   (no duplicates, no subsumed cores);
//! * **Completeness** — on small TBoxes, an unlimited enumeration finds
//!   *exactly* the minimal unsat subsets a brute-force powerset oracle
//!   finds;
//! * **Repairs** — every ranked repair hits all enumerated cores, its
//!   removal re-proves `Sat`, no proper subset of it is itself a repair,
//!   and the ranking is stable across re-runs.
//!
//! Random TBoxes come from the same edit-script vocabulary as
//! `incremental_dl.rs`; random ORM schemas come from `orm-gen`'s
//! unrestricted generator.

use orm_dl::concept::{Concept, RoleExpr};
use orm_dl::explain::{core_refutes, explain_unsat, with_deep_stack, Explanation};
use orm_dl::tableau::satisfiable;
use orm_dl::tbox::TBox;
use orm_dl::{enumerate_mus, ranked_repairs, AxiomId, DlOutcome, MusEnumeration, SatCache};
use orm_gen::{generate, multi_contradiction, GenConfig};
use proptest::prelude::*;

const BUDGET: u64 = 150_000;
/// The enumeration/oracle properties assert that *no* probe starves
/// (`family.complete`), and their branch probes search weakened
/// near-full TBoxes — harder Sat instances than single-core extraction
/// ever poses. A larger cap keeps those assertions about the algorithm,
/// not the budget.
const ENUM_BUDGET: u64 = 2_000_000;
const ATOMS: usize = 4;
const ROLES: usize = 2;

// The direct `satisfiable`-over-`restrict_to` calls below run on
// `with_deep_stack` for the same reason `explain_unsat` does internally:
// weakened-TBox searches recurse one frame per decision level, which
// overflows a default test-thread stack in debug builds.

/// One random axiom over the fixed vocabulary (additions only — cores are
/// about a TBox state, not an edit history).
#[derive(Clone, Debug)]
enum Axiom {
    /// `Aᵢ ⊑ Aⱼ`
    Sub(usize, usize),
    /// `Aᵢ ⊓ Aⱼ ⊑ ⊥`
    Excl(usize, usize),
    /// `Aᵢ ⊑ ∃Rᵣ.⊤`
    Exists(usize, usize),
    /// `Aᵢ ⊑ ∀Rᵣ.Aⱼ`
    Forall(usize, usize, usize),
    /// `⊤ ⊑ ≤1 Rᵣ`
    AtMostOne(usize),
    /// `∃Rᵣ.⊤ ⊑ ≥2 Rᵣ`
    AtLeastTwo(usize),
    /// `Rᵣ ⊑ Rₛ`
    RoleIncl(usize, usize),
    /// `Rᵣ` disjoint `Rₛ`
    Disjoint(usize, usize),
}

fn axiom_strategy() -> impl Strategy<Value = Axiom> {
    prop_oneof![
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Axiom::Sub(i, j)),
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Axiom::Excl(i, j)),
        ((0usize..ATOMS), (0usize..ROLES)).prop_map(|(i, r)| Axiom::Exists(i, r)),
        ((0usize..ATOMS), (0usize..ROLES), (0usize..ATOMS))
            .prop_map(|(i, r, j)| Axiom::Forall(i, r, j)),
        (0usize..ROLES).prop_map(Axiom::AtMostOne),
        (0usize..ROLES).prop_map(Axiom::AtLeastTwo),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Axiom::RoleIncl(r, s)),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Axiom::Disjoint(r, s)),
    ]
}

fn build(axioms: &[Axiom]) -> (TBox, Vec<Concept>) {
    let mut t = TBox::new();
    let atoms: Vec<Concept> =
        (0..ATOMS).map(|i| Concept::Atomic(t.atom(format!("A{i}")))).collect();
    let roles: Vec<RoleExpr> =
        (0..ROLES).map(|i| RoleExpr::direct(t.role(format!("R{i}")))).collect();
    for ax in axioms {
        match *ax {
            Axiom::Sub(i, j) => {
                t.gci(atoms[i].clone(), atoms[j].clone());
            }
            Axiom::Excl(i, j) => {
                t.gci(Concept::and([atoms[i].clone(), atoms[j].clone()]), Concept::Bottom);
            }
            Axiom::Exists(i, r) => {
                t.gci(atoms[i].clone(), Concept::some(roles[r]));
            }
            Axiom::Forall(i, r, j) => {
                t.gci(atoms[i].clone(), Concept::ForAll(roles[r], Box::new(atoms[j].clone())));
            }
            Axiom::AtMostOne(r) => {
                t.gci(Concept::Top, Concept::AtMost(1, roles[r]));
            }
            Axiom::AtLeastTwo(r) => {
                t.gci(Concept::some(roles[r]), Concept::AtLeast(2, roles[r]));
            }
            Axiom::RoleIncl(r, s) => {
                t.role_inclusion(roles[r], roles[s]);
            }
            Axiom::Disjoint(r, s) => {
                t.disjoint(roles[r], roles[s]);
            }
        }
    }
    // Queries: each atom, each ∃R.⊤, and one conjunctive pair — a mix
    // that hits propagation, generation and merging.
    let mut queries: Vec<Concept> = atoms.clone();
    queries.extend(roles.iter().map(|r| Concept::some(*r)));
    queries.push(Concept::and([atoms[0].clone(), atoms[1].clone()]));
    (t, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantees (a), (b) and verdict agreement over random DL TBoxes:
    /// every core refutes alone, every `minimal` core loses refutation
    /// power with any single axiom removed, and the explanation outcome
    /// classifies like the plain verdict.
    #[test]
    fn cores_are_sound_minimal_and_agree(
        axioms in prop::collection::vec(axiom_strategy(), 1..12),
    ) {
        let (tbox, queries) = build(&axioms);
        let mut cache = SatCache::new();
        for query in &queries {
            let plain = with_deep_stack(|| satisfiable(&tbox, query, BUDGET));
            let explanation = explain_unsat(&tbox, query, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain, "outcome diverged on {}", query);
            // The cached path classifies identically.
            let cached = cache.explain(&tbox, query, BUDGET);
            prop_assert_eq!(cached.verdict(), plain, "cached outcome diverged on {}", query);
            let Explanation::Unsat(core) = explanation else { continue };
            // (a) The core alone refutes.
            prop_assert!(
                with_deep_stack(|| core_refutes(&tbox, &core, query, BUDGET)),
                "core {:?} does not refute {}", core, query
            );
            // (b) Minimality: dropping any single axiom restores a model.
            prop_assert!(core.minimal, "budget should never bite at this size");
            for i in 0..core.len() {
                let mut weakened = core.axioms.clone();
                let removed = weakened.remove(i);
                let verdict =
                    with_deep_stack(|| satisfiable(&tbox.restrict_to(&weakened), query, BUDGET));
                prop_assert_eq!(
                    verdict, DlOutcome::Sat,
                    "core for {} is not minimal: still {:?} without {}",
                    query, verdict, removed
                );
            }
        }
    }

    /// Guarantee (c) through the full ORM pipeline on random generated
    /// schemas: per-element explanations agree with the plain sweep
    /// verdicts, every core refutes alone, and every core axiom carries a
    /// recorded ORM origin (so each diagnosis names ≥ 1 construct —
    /// unless the core is empty, which a type query over a translated
    /// schema never produces).
    #[test]
    fn orm_pipeline_explanations_agree_and_attribute(seed in 0u64..40) {
        let schema = generate(&GenConfig::small(seed));
        let t = orm_dl::translate(&schema);
        for (ty, _) in schema.object_types() {
            let plain = with_deep_stack(|| t.type_satisfiable(ty, BUDGET));
            let explanation = t.explain_type(ty, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain);
            if let Explanation::Unsat(core) = explanation {
                prop_assert!(with_deep_stack(|| core_refutes(
                    &t.tbox, &core, &t.type_concept(ty), BUDGET
                )));
                prop_assert!(!core.is_empty(), "a named type needs at least one axiom to clash");
                for id in &core.axioms {
                    prop_assert!(t.axiom_origin(*id).is_some(), "axiom {} unattributed", id);
                }
                prop_assert!(!t.core_origins(&core).is_empty());
            }
        }
        for (role, _) in schema.roles() {
            let plain = with_deep_stack(|| t.role_satisfiable(role, BUDGET));
            let explanation = t.explain_role(role, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain);
            if let Explanation::Unsat(core) = explanation {
                prop_assert!(with_deep_stack(|| core_refutes(
                    &t.tbox, &core, &t.role_concept(role), BUDGET
                )));
                prop_assert!(!t.core_origins(&core).is_empty());
            }
        }
    }
}

/// `sub ⊆ sup` over sorted axiom-id slices.
fn sorted_subset(sub: &[AxiomId], sup: &[AxiomId]) -> bool {
    let mut it = sup.iter();
    sub.iter().all(|a| it.any(|b| b == a))
}

/// Brute-force MUS oracle: probe the axiom powerset in ascending subset
/// size, skipping supersets of already-found MUSes. A subset that proves
/// `Unsat` at size `k` is necessarily minimal — every proper subset was
/// either probed `Sat` at a smaller size or would contain an
/// earlier-found MUS (excluded). Only viable for small `n`; the
/// completeness property below caps generation accordingly.
fn brute_force_muses(tbox: &TBox, query: &Concept, budget: u64) -> Vec<Vec<AxiomId>> {
    let ids: Vec<AxiomId> = tbox.axiom_ids().collect();
    let n = ids.len();
    assert!(n <= 12, "powerset oracle is exponential; keep it small");
    let mut masks: Vec<u32> = (0..(1u32 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());
    let mut muses: Vec<(u32, Vec<AxiomId>)> = Vec::new();
    for mask in masks {
        if muses.iter().any(|(m, _)| m & mask == *m) {
            continue; // superset of a found MUS: unsat but not minimal
        }
        let subset: Vec<AxiomId> = ids
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, a)| a)
            .collect();
        let verdict = with_deep_stack(|| satisfiable(&tbox.restrict_to(&subset), query, budget));
        assert_ne!(verdict, DlOutcome::ResourceLimit, "oracle probe starved on {query}");
        if verdict == DlOutcome::Unsat {
            muses.push((mask, subset));
        }
    }
    let mut out: Vec<Vec<AxiomId>> = muses.into_iter().map(|(_, s)| s).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Family soundness, minimality and pairwise ⊆-incomparability over
    /// random DL TBoxes, plus agreement: the enumeration classifies like
    /// the plain verdict, its first core matches single-core extraction
    /// behaviour (both certified), and the cached route
    /// (`SatCache::enumerate`) returns the same family as the direct
    /// engine call.
    #[test]
    fn enumerated_families_are_certified_and_incomparable(
        axioms in prop::collection::vec(axiom_strategy(), 1..12),
    ) {
        let (tbox, queries) = build(&axioms);
        let mut cache = SatCache::new();
        for query in &queries {
            let plain = with_deep_stack(|| satisfiable(&tbox, query, ENUM_BUDGET));
            let enumeration = enumerate_mus(&tbox, query, ENUM_BUDGET, usize::MAX);
            prop_assert_eq!(enumeration.verdict(), plain, "outcome diverged on {}", query);
            let cached = cache.enumerate(&tbox, query, ENUM_BUDGET, usize::MAX);
            prop_assert_eq!(&cached, &enumeration, "cached family diverged on {}", query);
            let MusEnumeration::Unsat(family) = enumeration else { continue };
            prop_assert!(!family.cores.is_empty());
            prop_assert!(!family.truncated, "no cap was requested");
            for (i, core) in family.cores.iter().enumerate() {
                // Soundness: each core refutes alone.
                prop_assert!(
                    with_deep_stack(|| core_refutes(&tbox, core, query, ENUM_BUDGET)),
                    "core {:?} does not refute {}", core, query
                );
                // Minimality: dropping any single axiom restores a model.
                prop_assert!(core.minimal, "budget should never bite at this size");
                for j in 0..core.len() {
                    let mut weakened = core.axioms.clone();
                    let removed = weakened.remove(j);
                    let verdict = with_deep_stack(
                        || satisfiable(&tbox.restrict_to(&weakened), query, ENUM_BUDGET)
                    );
                    prop_assert_eq!(
                        verdict, DlOutcome::Sat,
                        "family core for {} not minimal without {}", query, removed
                    );
                }
                // Pairwise ⊆-incomparability.
                for other in &family.cores[i + 1..] {
                    prop_assert!(
                        !sorted_subset(&core.axioms, &other.axioms)
                            && !sorted_subset(&other.axioms, &core.axioms),
                        "cores comparable: {:?} vs {:?}", core, other
                    );
                }
            }
        }
    }

    /// Repair guarantees over random DL TBoxes: every ranked repair hits
    /// all enumerated cores, removing its axioms re-proves `Sat`, no
    /// proper subset of a returned repair is itself a repair, and the
    /// ranked order is stable across re-runs on the same TBox (same
    /// delta log ⇒ same recency keys ⇒ same order).
    #[test]
    fn repairs_hit_reprove_and_rank_stably(
        axioms in prop::collection::vec(axiom_strategy(), 1..12),
    ) {
        let (tbox, queries) = build(&axioms);
        let all: Vec<AxiomId> = tbox.axiom_ids().collect();
        for query in &queries {
            let MusEnumeration::Unsat(family) = enumerate_mus(&tbox, query, ENUM_BUDGET, usize::MAX)
                else { continue };
            let repairs = ranked_repairs(&tbox, query, ENUM_BUDGET, &family);
            let rerun = ranked_repairs(&tbox, query, ENUM_BUDGET, &family);
            prop_assert_eq!(&repairs, &rerun, "ranking unstable on {}", query);
            // Some weakened subsets legitimately starve any finite budget
            // (the ≤1/≥2 counting interplay explodes the search); the
            // engine reports that honestly via `complete = false` instead
            // of guessing. The hitting-set guarantees below are only
            // *claimed* for complete families, so skip the rest here —
            // ranking stability above holds either way.
            if !family.complete {
                continue;
            }
            // A complete family with no empty core always admits repairs.
            if family.cores.iter().all(|c| !c.is_empty()) {
                prop_assert!(!repairs.is_empty(), "no repair found for {}", query);
            }
            for repair in &repairs {
                prop_assert!(repair.verified);
                // Hits every core.
                for core in &family.cores {
                    prop_assert!(
                        core.axioms.iter().any(|a| repair.axioms.contains(a)),
                        "repair {:?} misses core {:?}", repair, core
                    );
                }
                // Removing the repair re-proves Sat.
                let keep: Vec<AxiomId> =
                    all.iter().copied().filter(|a| !repair.axioms.contains(a)).collect();
                let verdict =
                    with_deep_stack(|| satisfiable(&tbox.restrict_to(&keep), query, ENUM_BUDGET));
                prop_assert_eq!(verdict, DlOutcome::Sat, "repair {:?} does not fix {}", repair, query);
                // No proper subset is a repair: dropping any one axiom
                // from the repair leaves some enumerated core intact, so
                // the element stays refuted.
                for skip in &repair.axioms {
                    let keep: Vec<AxiomId> = all
                        .iter()
                        .copied()
                        .filter(|a| a == skip || !repair.axioms.contains(a))
                        .collect();
                    let verdict =
                        with_deep_stack(|| satisfiable(&tbox.restrict_to(&keep), query, ENUM_BUDGET));
                    prop_assert_eq!(
                        verdict, DlOutcome::Unsat,
                        "proper subset of {:?} (without {}) already repairs {}", repair, skip, query
                    );
                }
            }
        }
    }
}

proptest! {
    // The powerset oracle probes up to 2^n subsets per query; fewer,
    // smaller cases keep the debug-mode battery in seconds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Completeness against ground truth: an unlimited enumeration on a
    /// small TBox returns *exactly* the minimal unsat subsets that a
    /// brute-force powerset sweep finds.
    #[test]
    fn enumeration_matches_powerset_oracle(
        axioms in prop::collection::vec(axiom_strategy(), 1..11),
    ) {
        let (tbox, queries) = build(&axioms);
        // Two queries keep the oracle affordable: one atom and the
        // conjunctive pair (the shapes the translation actually asks).
        for query in [&queries[0], &queries[queries.len() - 1]] {
            let MusEnumeration::Unsat(family) = enumerate_mus(&tbox, query, ENUM_BUDGET, usize::MAX)
                else {
                    // Oracle agreement for non-Unsat: no subset may refute.
                    let oracle = brute_force_muses(&tbox, query, ENUM_BUDGET);
                    prop_assert!(oracle.is_empty(), "enumeration missed {:?} on {}", oracle, query);
                    continue;
                };
            prop_assert!(family.complete, "budget should never bite at this size");
            let mut enumerated: Vec<Vec<AxiomId>> =
                family.cores.iter().map(|c| c.axioms.clone()).collect();
            enumerated.sort();
            let oracle = brute_force_muses(&tbox, query, ENUM_BUDGET);
            prop_assert_eq!(enumerated, oracle, "family mismatch on {}", query);
        }
    }

    /// The full ORM pipeline on random generated schemas: per-element
    /// enumerations classify like the plain sweep verdicts, families are
    /// certified (each core refutes alone and is attributed), and repairs
    /// verify end to end through `Translation::{enumerate_type,repairs_for}`.
    #[test]
    fn orm_pipeline_enumerations_agree_and_repair(seed in 0u64..24) {
        let schema = generate(&GenConfig::small(seed));
        let t = orm_dl::translate(&schema);
        for (ty, _) in schema.object_types() {
            let plain = with_deep_stack(|| t.type_satisfiable(ty, ENUM_BUDGET));
            let enumeration = t.enumerate_type(ty, ENUM_BUDGET, 8);
            prop_assert_eq!(enumeration.verdict(), plain);
            // The cached route replays the identical family.
            prop_assert_eq!(&t.enumerate_type(ty, ENUM_BUDGET, 8), &enumeration);
            let MusEnumeration::Unsat(family) = enumeration else { continue };
            let query = t.type_concept(ty);
            for core in &family.cores {
                prop_assert!(with_deep_stack(|| core_refutes(&t.tbox, core, &query, ENUM_BUDGET)));
                prop_assert!(!t.core_origins(core).is_empty());
            }
            for repair in t.repairs_for(&query, ENUM_BUDGET, &family) {
                prop_assert!(repair.verified);
                prop_assert!(
                    family.cores.iter().all(|c| c.axioms.iter().any(|a| repair.axioms.contains(a)))
                );
                prop_assert!(!t.repair_origins(&repair).is_empty());
            }
        }
    }
}

/// Known-ground-truth families from the generator's multi-contradiction
/// schemas: `k` independent exclusive pairs over one doomed type yield
/// exactly `k` three-axiom cores and `3^k` verified two-or-more-axiom
/// repairs (one culprit picked per contradiction).
#[test]
fn multi_contradiction_families_match_ground_truth() {
    for k in 0..4usize {
        let (schema, doomed) = multi_contradiction(k);
        let t = orm_dl::translate(&schema);
        let enumeration = t.enumerate_type(doomed, 200_000, 64);
        if k == 0 {
            assert_eq!(enumeration, MusEnumeration::Satisfiable);
            continue;
        }
        let MusEnumeration::Unsat(family) = enumeration else {
            panic!("k={k}: expected Unsat, got {enumeration:?}");
        };
        assert_eq!(family.len(), k, "k={k}: {family:?}");
        assert!(family.complete && !family.truncated);
        assert!(family.cores.iter().all(|c| c.minimal && c.len() == 3));
        let repairs = t.repairs_for(&t.type_concept(doomed), 200_000, &family);
        assert_eq!(repairs.len(), 3usize.pow(k as u32), "k={k}");
        assert!(repairs.iter().all(|r| r.verified && r.len() == k));
    }
}

/// The worked example from `docs/EXPLANATIONS.md`, pinned end to end:
/// `examples/schemas/fig1_university.orm` parses, diagnoses to exactly
/// the PhD-student clash, and the statements name the three culprits.
#[test]
fn fig1_sample_schema_diagnoses_as_documented() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../examples/schemas/fig1_university.orm"
    ))
    .expect("sample schema readable");
    let schema = orm_syntax::parse(&text).expect("sample schema parses");
    let diagnoses = orm_reasoner::diagnose(&schema, 200_000);
    assert_eq!(diagnoses.len(), 1, "only PhdStudent is doomed: {diagnoses:?}");
    let d = &diagnoses[0];
    assert!(d.core.minimal);
    assert_eq!(d.core.len(), 3);
    assert_eq!(d.statements.len(), 3, "statements: {:?}", d.statements);
    assert!(d.statements.iter().any(|s| s.contains("is a Student")));
    assert!(d
        .statements
        .iter()
        .any(|s| s.contains("is an Employee") || s.contains("is a Employee")));
    assert!(d.statements.iter().any(|s| s.contains("more than one of")));
}
