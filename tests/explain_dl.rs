//! Differential guarantees of unsat-core extraction (PR 5):
//!
//! * **Soundness** — every extracted core refutes its query on its own
//!   (`restrict_to(core)` proves `Unsat`);
//! * **Minimality** — removing any *single* axiom from a core flagged
//!   `minimal` flips the restricted verdict to `Sat`;
//! * **Agreement** — the explanation outcome classifies exactly like the
//!   plain `satisfiable` verdict, and the cached explanation path
//!   (`SatCache::explain` / `Translation::explain_*`) classifies like the
//!   uncached `explain_unsat`;
//! * **Attribution** — through the ORM pipeline, every core axiom of a
//!   translated schema maps to a recorded [`orm_dl::AxiomOrigin`], so a
//!   diagnosis can always name at least one schema construct.
//!
//! Random TBoxes come from the same edit-script vocabulary as
//! `incremental_dl.rs`; random ORM schemas come from `orm-gen`'s
//! unrestricted generator.

use orm_dl::concept::{Concept, RoleExpr};
use orm_dl::explain::{core_refutes, explain_unsat, with_deep_stack, Explanation};
use orm_dl::tableau::satisfiable;
use orm_dl::tbox::TBox;
use orm_dl::{DlOutcome, SatCache};
use orm_gen::{generate, GenConfig};
use proptest::prelude::*;

const BUDGET: u64 = 150_000;
const ATOMS: usize = 4;
const ROLES: usize = 2;

// The direct `satisfiable`-over-`restrict_to` calls below run on
// `with_deep_stack` for the same reason `explain_unsat` does internally:
// weakened-TBox searches recurse one frame per decision level, which
// overflows a default test-thread stack in debug builds.

/// One random axiom over the fixed vocabulary (additions only — cores are
/// about a TBox state, not an edit history).
#[derive(Clone, Debug)]
enum Axiom {
    /// `Aᵢ ⊑ Aⱼ`
    Sub(usize, usize),
    /// `Aᵢ ⊓ Aⱼ ⊑ ⊥`
    Excl(usize, usize),
    /// `Aᵢ ⊑ ∃Rᵣ.⊤`
    Exists(usize, usize),
    /// `Aᵢ ⊑ ∀Rᵣ.Aⱼ`
    Forall(usize, usize, usize),
    /// `⊤ ⊑ ≤1 Rᵣ`
    AtMostOne(usize),
    /// `∃Rᵣ.⊤ ⊑ ≥2 Rᵣ`
    AtLeastTwo(usize),
    /// `Rᵣ ⊑ Rₛ`
    RoleIncl(usize, usize),
    /// `Rᵣ` disjoint `Rₛ`
    Disjoint(usize, usize),
}

fn axiom_strategy() -> impl Strategy<Value = Axiom> {
    prop_oneof![
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Axiom::Sub(i, j)),
        ((0usize..ATOMS), (0usize..ATOMS)).prop_map(|(i, j)| Axiom::Excl(i, j)),
        ((0usize..ATOMS), (0usize..ROLES)).prop_map(|(i, r)| Axiom::Exists(i, r)),
        ((0usize..ATOMS), (0usize..ROLES), (0usize..ATOMS))
            .prop_map(|(i, r, j)| Axiom::Forall(i, r, j)),
        (0usize..ROLES).prop_map(Axiom::AtMostOne),
        (0usize..ROLES).prop_map(Axiom::AtLeastTwo),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Axiom::RoleIncl(r, s)),
        ((0usize..ROLES), (0usize..ROLES)).prop_map(|(r, s)| Axiom::Disjoint(r, s)),
    ]
}

fn build(axioms: &[Axiom]) -> (TBox, Vec<Concept>) {
    let mut t = TBox::new();
    let atoms: Vec<Concept> =
        (0..ATOMS).map(|i| Concept::Atomic(t.atom(format!("A{i}")))).collect();
    let roles: Vec<RoleExpr> =
        (0..ROLES).map(|i| RoleExpr::direct(t.role(format!("R{i}")))).collect();
    for ax in axioms {
        match *ax {
            Axiom::Sub(i, j) => {
                t.gci(atoms[i].clone(), atoms[j].clone());
            }
            Axiom::Excl(i, j) => {
                t.gci(Concept::and([atoms[i].clone(), atoms[j].clone()]), Concept::Bottom);
            }
            Axiom::Exists(i, r) => {
                t.gci(atoms[i].clone(), Concept::some(roles[r]));
            }
            Axiom::Forall(i, r, j) => {
                t.gci(atoms[i].clone(), Concept::ForAll(roles[r], Box::new(atoms[j].clone())));
            }
            Axiom::AtMostOne(r) => {
                t.gci(Concept::Top, Concept::AtMost(1, roles[r]));
            }
            Axiom::AtLeastTwo(r) => {
                t.gci(Concept::some(roles[r]), Concept::AtLeast(2, roles[r]));
            }
            Axiom::RoleIncl(r, s) => {
                t.role_inclusion(roles[r], roles[s]);
            }
            Axiom::Disjoint(r, s) => {
                t.disjoint(roles[r], roles[s]);
            }
        }
    }
    // Queries: each atom, each ∃R.⊤, and one conjunctive pair — a mix
    // that hits propagation, generation and merging.
    let mut queries: Vec<Concept> = atoms.clone();
    queries.extend(roles.iter().map(|r| Concept::some(*r)));
    queries.push(Concept::and([atoms[0].clone(), atoms[1].clone()]));
    (t, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantees (a), (b) and verdict agreement over random DL TBoxes:
    /// every core refutes alone, every `minimal` core loses refutation
    /// power with any single axiom removed, and the explanation outcome
    /// classifies like the plain verdict.
    #[test]
    fn cores_are_sound_minimal_and_agree(
        axioms in prop::collection::vec(axiom_strategy(), 1..12),
    ) {
        let (tbox, queries) = build(&axioms);
        let mut cache = SatCache::new();
        for query in &queries {
            let plain = with_deep_stack(|| satisfiable(&tbox, query, BUDGET));
            let explanation = explain_unsat(&tbox, query, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain, "outcome diverged on {}", query);
            // The cached path classifies identically.
            let cached = cache.explain(&tbox, query, BUDGET);
            prop_assert_eq!(cached.verdict(), plain, "cached outcome diverged on {}", query);
            let Explanation::Unsat(core) = explanation else { continue };
            // (a) The core alone refutes.
            prop_assert!(
                with_deep_stack(|| core_refutes(&tbox, &core, query, BUDGET)),
                "core {:?} does not refute {}", core, query
            );
            // (b) Minimality: dropping any single axiom restores a model.
            prop_assert!(core.minimal, "budget should never bite at this size");
            for i in 0..core.len() {
                let mut weakened = core.axioms.clone();
                let removed = weakened.remove(i);
                let verdict =
                    with_deep_stack(|| satisfiable(&tbox.restrict_to(&weakened), query, BUDGET));
                prop_assert_eq!(
                    verdict, DlOutcome::Sat,
                    "core for {} is not minimal: still {:?} without {}",
                    query, verdict, removed
                );
            }
        }
    }

    /// Guarantee (c) through the full ORM pipeline on random generated
    /// schemas: per-element explanations agree with the plain sweep
    /// verdicts, every core refutes alone, and every core axiom carries a
    /// recorded ORM origin (so each diagnosis names ≥ 1 construct —
    /// unless the core is empty, which a type query over a translated
    /// schema never produces).
    #[test]
    fn orm_pipeline_explanations_agree_and_attribute(seed in 0u64..40) {
        let schema = generate(&GenConfig::small(seed));
        let t = orm_dl::translate(&schema);
        for (ty, _) in schema.object_types() {
            let plain = with_deep_stack(|| t.type_satisfiable(ty, BUDGET));
            let explanation = t.explain_type(ty, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain);
            if let Explanation::Unsat(core) = explanation {
                prop_assert!(with_deep_stack(|| core_refutes(
                    &t.tbox, &core, &t.type_concept(ty), BUDGET
                )));
                prop_assert!(!core.is_empty(), "a named type needs at least one axiom to clash");
                for id in &core.axioms {
                    prop_assert!(t.axiom_origin(*id).is_some(), "axiom {} unattributed", id);
                }
                prop_assert!(!t.core_origins(&core).is_empty());
            }
        }
        for (role, _) in schema.roles() {
            let plain = with_deep_stack(|| t.role_satisfiable(role, BUDGET));
            let explanation = t.explain_role(role, BUDGET);
            prop_assert_eq!(explanation.verdict(), plain);
            if let Explanation::Unsat(core) = explanation {
                prop_assert!(with_deep_stack(|| core_refutes(
                    &t.tbox, &core, &t.role_concept(role), BUDGET
                )));
                prop_assert!(!t.core_origins(&core).is_empty());
            }
        }
    }
}

/// The worked example from `docs/EXPLANATIONS.md`, pinned end to end:
/// `examples/schemas/fig1_university.orm` parses, diagnoses to exactly
/// the PhD-student clash, and the statements name the three culprits.
#[test]
fn fig1_sample_schema_diagnoses_as_documented() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../examples/schemas/fig1_university.orm"
    ))
    .expect("sample schema readable");
    let schema = orm_syntax::parse(&text).expect("sample schema parses");
    let diagnoses = orm_reasoner::diagnose(&schema, 200_000);
    assert_eq!(diagnoses.len(), 1, "only PhdStudent is doomed: {diagnoses:?}");
    let d = &diagnoses[0];
    assert!(d.core.minimal);
    assert_eq!(d.core.len(), 3);
    assert_eq!(d.statements.len(), 3, "statements: {:?}", d.statements);
    assert!(d.statements.iter().any(|s| s.contains("is a Student")));
    assert!(d
        .statements
        .iter()
        .any(|s| s.contains("is an Employee") || s.contains("is a Employee")));
    assert!(d.statements.iter().any(|s| s.contains("more than one of")));
}
