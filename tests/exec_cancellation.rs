//! Cancellation-safety of the shared verdict shards: interrupting a
//! parallel battery mid-flight must leave every shard consistent.
//!
//! The contract under test (see `orm_dl::exec` and the recording rules
//! in `orm_dl::cache`): an interrupted proof records **no** cache entry,
//! so after a cancelled or deadlined `classify_par_cx` the very same
//! translation — warm shards and all — must agree verdict for verdict
//! with a fresh sequential pass over a cold translation. In particular
//! no `Unknown` entry may mask a verdict the budget can prove.
//!
//! Cancellation is triggered deterministically through
//! [`ExecCx::cancel_after_steps`] (the meter trips the token at an exact
//! step count) rather than wall-clock racing, so every seed exercises a
//! *different* but reproducible interruption point.

use orm_dl::{translate, ExecCx, SearchOutcome};
use orm_gen::generate;
use orm_tests::mappable_config;
use proptest::prelude::*;

const DL_BUDGET: u64 = 120_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cancel mid-`classify_par_cx`, then re-run uncancelled on the same
    /// (warm) shards: the results must agree 100% with a fresh
    /// sequential pass — across classify, the type sweep, and the role
    /// sweep.
    #[test]
    fn cancelled_classify_par_leaves_shards_consistent(
        seed in any::<u64>(),
        cancel_at in 1u64..5_000,
        threads in 1usize..5,
    ) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);

        // The interrupted run: trips deterministically once the shared
        // meter crosses `cancel_at` steps (possibly before any proof).
        let cancelling = ExecCx::with_steps(DL_BUDGET).cancel_after_steps(cancel_at);
        let (partial, stats) = translation.classify_par_cx(&schema, &cancelling, threads);
        let n = schema.object_types().count() as u64;
        prop_assert_eq!(stats.executed + stats.skipped, n * n.saturating_sub(1));

        // Subsequent uncancelled runs on the SAME translation must agree
        // with a fresh sequential pass on a COLD translation.
        let warm_classify = translation.classify(&schema, DL_BUDGET);
        let cold = translate(&schema);
        let cold_classify = cold.classify(&schema, DL_BUDGET);
        prop_assert_eq!(&warm_classify, &cold_classify, "warm classify diverged after cancel");

        // Every pair the interrupted run *did* derive is in the full set.
        for pair in &partial {
            prop_assert!(cold_classify.contains(pair), "cancelled run invented pair {pair:?}");
        }

        // Sweeps: verdict-for-verdict equality means no Unknown entry
        // recorded during the interrupted run masks a provable verdict.
        let warm_types = translation.type_sweep(&schema, DL_BUDGET);
        let cold_types = cold.type_sweep(&schema, DL_BUDGET);
        prop_assert_eq!(warm_types, cold_types, "type sweep diverged after cancel");
        let warm_roles = translation.role_sweep(&schema, DL_BUDGET);
        let cold_roles = cold.role_sweep(&schema, DL_BUDGET);
        prop_assert_eq!(warm_roles, cold_roles, "role sweep diverged after cancel");
    }

    /// Same property for the deadline path, driven through the parallel
    /// role sweep: a context whose deadline already passed proves
    /// nothing, caches nothing, and reports every role as
    /// `DeadlineExceeded` — after which the same shards still converge
    /// to the sequential truth.
    #[test]
    fn deadlined_sweep_caches_nothing(seed in any::<u64>(), threads in 1usize..5) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);

        let expired = ExecCx::with_steps(DL_BUDGET)
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let (sweep, stats) = translation.role_sweep_par_cx(&schema, &expired, threads);
        prop_assert_eq!(stats.executed, 0, "expired deadline still executed items");
        for (_, outcome) in &sweep {
            prop_assert_eq!(*outcome, SearchOutcome::DeadlineExceeded);
        }
        prop_assert_eq!(translation.cache_stats().hits, 0, "deadlined run touched entries");

        let warm = translation.role_sweep(&schema, DL_BUDGET);
        let cold = translate(&schema).role_sweep(&schema, DL_BUDGET);
        prop_assert_eq!(warm, cold, "role sweep diverged after deadline");
    }

    /// The cx-surfaced parallel batteries agree with their sequential cx
    /// drivers when nothing interrupts — cold and warm — across thread
    /// counts, through the work-stealing scheduler.
    #[test]
    fn uninterrupted_cx_batteries_match_sequential(seed in any::<u64>()) {
        let schema = generate(&mappable_config(seed));
        let translation = translate(&schema);
        let cx = ExecCx::with_steps(DL_BUDGET);

        let seq_classify = translation.classify_cx(&schema, &cx);
        let seq_roles = translation.role_sweep_cx(&schema, &cx);
        for threads in [1usize, 2, 4, 8] {
            // Cold shards for the parallel run, warm for the repeat.
            let fresh = translate(&schema);
            let (cold_pairs, cold_stats) = fresh.classify_par_cx(&schema, &cx, threads);
            prop_assert_eq!(&cold_pairs, &seq_classify, "cold classify diverged at {} threads", threads);
            prop_assert_eq!(cold_stats.skipped, 0);
            let (warm_pairs, _) = fresh.classify_par_cx(&schema, &cx, threads);
            prop_assert_eq!(&warm_pairs, &seq_classify, "warm classify diverged at {} threads", threads);

            let (roles, role_stats) = fresh.role_sweep_par_cx(&schema, &cx, threads);
            prop_assert_eq!(&roles, &seq_roles, "role sweep diverged at {} threads", threads);
            prop_assert_eq!(role_stats.executed as usize, roles.len());
        }
    }
}
