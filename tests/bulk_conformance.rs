//! Differential suite for the compiled bulk-conformance path (PR 6).
//!
//! The contract under test: a compiled [`CheckPlan`] executing over the
//! columnar population reports **exactly** the violation sequence the
//! per-violation validator ([`orm_population::check`]) reports — same
//! violations, same order, same rendered details — on arbitrary
//! generated schemas × random populations (clean and fault-injected),
//! under both default and permissive check options. A deterministic
//! companion pins plan invalidation: schema edits and TBox edit sessions
//! each stale the plan, and the recompiled plan agrees again.

use orm_gen::populate::{bulk_workload, populate_random, PopConfig};
use orm_population::{check, CheckOptions, CheckPlan, Population};
use orm_reasoner::{check_bulk, BulkChecker};
use orm_tests::tiny_config;
use proptest::prelude::*;

/// Rule budget for plan certification; generated schemas are tiny.
const BUDGET: u64 = 200_000;

/// Assert the compiled plan reproduces the validator's violation
/// sequence verbatim on this schema × population × options.
fn assert_plan_agrees(schema: &orm_model::Schema, pop: &Population, options: CheckOptions) {
    let expected = check(schema, pop, options);
    let translation = orm_dl::translate(schema);
    let plan = CheckPlan::compile(schema, &translation, BUDGET, options);
    let got = plan.execute(schema, pop);
    assert_eq!(
        expected,
        got,
        "compiled plan diverged from the per-violation validator \
         (options {options:?}, population size {})",
        pop.size()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (possibly fault-injected) schemas × random conformity-leaning
    /// populations: the compiled plan and the validator agree exactly,
    /// under both option sets.
    #[test]
    fn compiled_plan_matches_validator(seed in any::<u64>()) {
        let config = tiny_config(seed);
        let schema = orm_gen::generate(&config);
        let pop = populate_random(&schema, &PopConfig::sized(seed, 60));
        assert_plan_agrees(&schema, &pop, CheckOptions::default());
        assert_plan_agrees(&schema, &pop, CheckOptions::permissive());
    }

    /// The empty population conforms to everything the validator lets
    /// through — and both checkers agree on it.
    #[test]
    fn compiled_plan_matches_on_empty_population(seed in any::<u64>()) {
        let schema = orm_gen::generate(&tiny_config(seed));
        assert_plan_agrees(&schema, &Population::new(), CheckOptions::default());
    }
}

/// The bulk workload with injected faults: plan and validator agree
/// exactly, every fault surfaces, and the one-shot `check_bulk` entry
/// point reports the same sequence.
#[test]
fn bulk_workload_differential() {
    let w = bulk_workload(2_000, 12, 9);
    let expected = check(&w.schema, &w.population, CheckOptions::default());
    assert!(
        expected.len() >= w.faults_injected,
        "each of the {} faults yields at least one violation, got {}",
        w.faults_injected,
        expected.len()
    );
    assert_plan_agrees(&w.schema, &w.population, CheckOptions::default());
    let got = check_bulk(&w.schema, &w.population, BUDGET, CheckOptions::default());
    assert_eq!(expected, got, "check_bulk diverged from the validator");
}

/// A clean bulk workload certifies Sat and reports nothing.
#[test]
fn clean_workload_certifies_and_conforms() {
    let w = bulk_workload(1_000, 0, 5);
    let mut checker = BulkChecker::new(&w.schema, BUDGET);
    let violations = checker.check(&w.schema, &w.population);
    assert_eq!(violations, vec![]);
    let plan = checker.plan().expect("plan compiled by check");
    assert!(plan.certified_sat(), "the order schema is satisfiable");
    assert!(plan.unsat_types().is_empty());
}

/// Plan invalidation: a schema edit bumps the revision and stales the
/// plan; a TBox edit session bumps the cache stamp and stales it again.
/// Each recompile agrees with the validator on the post-edit schema.
#[test]
fn plan_invalidation_across_edits() {
    let w = bulk_workload(400, 6, 3);
    let mut schema = w.schema;
    let mut checker = BulkChecker::new(&schema, BUDGET);

    let first = checker.check(&schema, &w.population);
    assert_eq!(first, check(&schema, &w.population, CheckOptions::default()));
    let plan = checker.plan().expect("plan compiled");
    assert!(plan.is_current(&schema, checker.translation()));
    let rev0 = plan.schema_revision();
    let ops0 = plan.op_count();

    // Re-checking without edits reuses the compiled plan as-is.
    let second = checker.check(&schema, &w.population);
    assert_eq!(first, second);
    assert_eq!(checker.plan().expect("still compiled").schema_revision(), rev0);

    // A schema edit (dropping one constraint) stales the plan...
    let (doomed, _) = schema.constraints().next().expect("workload has constraints");
    schema.remove_constraint(doomed).expect("constraint exists");
    assert!(schema.revision() > rev0);
    assert!(!checker.plan().expect("old plan").is_current(&schema, checker.translation()));
    // ...and the recompiled plan tracks the new revision, drops the
    // constraint's ops, and agrees with the validator again.
    let relaxed = checker.check(&schema, &w.population);
    let replanned = checker.plan().expect("recompiled");
    assert_eq!(replanned.schema_revision(), schema.revision());
    assert!(replanned.op_count() < ops0);
    assert_eq!(relaxed, check(&schema, &w.population, CheckOptions::default()));

    // A TBox edit session bumps the cache stamp: the plan is stale even
    // though the schema revision is unchanged.
    let rev_after = schema.revision();
    let (premium, _) = schema
        .object_types()
        .find(|(_, ot)| ot.name() == "PremiumCustomer")
        .expect("workload type");
    let (courier, _) =
        schema.object_types().find(|(_, ot)| ot.name() == "Courier").expect("workload type");
    checker.edit().add_type_exclusion(premium, courier);
    assert_eq!(schema.revision(), rev_after);
    assert!(!checker.plan().expect("old plan").is_current(&schema, checker.translation()));
    let after_tbox_edit = checker.check(&schema, &w.population);
    assert!(checker.plan().expect("recompiled").is_current(&schema, checker.translation()));
    assert_eq!(after_tbox_edit, check(&schema, &w.population, CheckOptions::default()));
}
